"""Unit tests for top-K derivation search."""

import pytest

from repro import P3
from repro.data import paper_fragment
from repro.provenance.extraction import extract_polynomial
from repro.queries.topk import (
    SearchBudgetExceeded,
    best_derivation,
    top_k_derivations,
)


class TestAcquaintance:
    def test_best_derivation_is_the_r1_path(self, acquaintance):
        monomial, probability = best_derivation(
            acquaintance.graph, 'know("Ben","Elena")',
            acquaintance.probabilities)
        assert any(lit.key == "r1" for lit in monomial.literals)
        assert probability == pytest.approx(0.2 * 0.8)  # r3·r1 (certain rest)

    def test_top2_matches_polynomial(self, acquaintance):
        results = top_k_derivations(
            acquaintance.graph, 'know("Ben","Elena")',
            acquaintance.probabilities, k=5)
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        found = {monomial for monomial, _ in results}
        assert found == set(poly.monomials)

    def test_descending_order(self, acquaintance):
        results = top_k_derivations(
            acquaintance.graph, 'know("Ben","Elena")',
            acquaintance.probabilities, k=5)
        probabilities = [p for _, p in results]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_base_tuple_single_derivation(self, acquaintance):
        results = top_k_derivations(
            acquaintance.graph, 'like("Steve","Veggies")',
            acquaintance.probabilities, k=3)
        assert len(results) == 1
        assert results[0][1] == pytest.approx(0.4)


class TestTrustFragment:
    def test_enumerates_all_monomials_in_order(self, trust_fragment):
        key = "mutualTrustPath(1,6)"
        poly = trust_fragment.polynomial_of(key)
        results = top_k_derivations(
            trust_fragment.graph, key, trust_fragment.probabilities,
            k=len(poly) + 5)
        assert {m for m, _ in results} == set(poly.monomials)
        values = [p for _, p in results]
        assert values == sorted(values, reverse=True)

    def test_probability_is_monomial_product(self, trust_fragment):
        key = "mutualTrustPath(1,6)"
        results = top_k_derivations(
            trust_fragment.graph, key, trust_fragment.probabilities, k=1)
        monomial, probability = results[0]
        assert probability == pytest.approx(
            monomial.probability(trust_fragment.probabilities))


class TestSearchMechanics:
    def test_k_limits_results(self, trust_fragment):
        results = top_k_derivations(
            trust_fragment.graph, "mutualTrustPath(1,6)",
            trust_fragment.probabilities, k=2)
        assert len(results) == 2

    def test_rejects_bad_k(self, acquaintance):
        with pytest.raises(ValueError):
            top_k_derivations(acquaintance.graph, 'know("Ben","Elena")',
                              acquaintance.probabilities, k=0)

    def test_unknown_tuple(self, acquaintance):
        with pytest.raises(KeyError):
            top_k_derivations(acquaintance.graph, "missing(1)",
                              acquaintance.probabilities, k=1)

    def test_budget_enforced(self, trust_fragment):
        with pytest.raises(SearchBudgetExceeded):
            top_k_derivations(
                trust_fragment.graph, "mutualTrustPath(1,6)",
                trust_fragment.probabilities, k=100, max_expansions=3)

    def test_hop_limit_prunes(self, trust_fragment):
        limited = top_k_derivations(
            trust_fragment.graph, "mutualTrustPath(1,6)",
            trust_fragment.probabilities, k=10, hop_limit=2)
        unlimited = top_k_derivations(
            trust_fragment.graph, "mutualTrustPath(1,6)",
            trust_fragment.probabilities, k=10)
        assert len(limited) <= len(unlimited)

    def test_distinct_rule_literals_not_absorbed(self):
        # r1·a and r2·a·b share no subset relation (different rule
        # literals), so both derivations are reported — same as extraction.
        p3 = P3.from_source("""
            t1 0.9: a(1).
            t2 0.5: b(1).
            r1 1.0: d(X) :- a(X).
            r2 1.0: d(X) :- a(X), b(X).
        """)
        p3.evaluate()
        results = top_k_derivations(
            p3.graph, "d(1)", p3.probabilities, k=10)
        poly = p3.polynomial_of("d", 1)
        assert {m for m, _ in results} == set(poly.monomials)

    def test_absorption_on_emission(self):
        # The same rule firing on two ground bodies, one a literal-subset
        # of the other: {r1,a} absorbs {r1,a,b} — top-k must emit only the
        # subset, matching the (absorbed) polynomial.
        from repro.provenance.graph import ProvenanceGraph, RuleExecution
        from repro.provenance.polynomial import (
            rule_literal, tuple_literal)
        graph = ProvenanceGraph()
        graph.add_base_tuple("a(1)", 0.9)
        graph.add_base_tuple("b(1)", 0.5)
        graph.add_rule("r1", 1.0)
        graph.add_execution(RuleExecution("r1", "d(1)", ("a(1)",), 1.0))
        graph.add_execution(RuleExecution("r1", "d(1)", ("a(1)", "b(1)"), 1.0))
        probabilities = graph.probability_map()
        results = top_k_derivations(graph, "d(1)", probabilities, k=10)
        assert len(results) == 1
        assert results[0][0].literals == frozenset(
            {rule_literal("r1"), tuple_literal("a(1)")})
        # Consistent with the absorbed polynomial.
        poly = extract_polynomial(graph, "d(1)")
        assert {m for m, _ in results} == set(poly.monomials)

    def test_facade_method(self, acquaintance):
        results = acquaintance.top_derivations("know", "Ben", "Elena", k=2)
        assert len(results) == 2


class TestConsistencyWithExtraction:
    def test_large_sample_agreement(self):
        # On a generated sample, lazy top-k must enumerate exactly the
        # polynomial's monomials, in probability order.
        from repro.data import generate_network
        from repro import P3Config
        network = generate_network(nodes=200, edges=700, seed=3)
        sample = network.sample_nodes_edges(25, 40, seed=2)
        p3 = P3(sample.to_program(), P3Config(hop_limit=4))
        p3.evaluate()
        mutual = sorted(map(str, p3.derived_atoms("mutualTrustPath")))
        if not mutual:
            pytest.skip("sample has no mutual paths")
        key = mutual[0]
        poly = extract_polynomial(p3.graph, key, hop_limit=4)
        results = top_k_derivations(
            p3.graph, key, p3.probabilities, k=len(poly) + 10, hop_limit=4)
        assert {m for m, _ in results} == set(poly.monomials)
