"""Learning rule weights from observations — the Section-8 direction.

Provenance polynomials are multilinear in the literal probabilities, so
the influence of Definition 4.1 doubles as an exact gradient.  This
example uses that to *learn* program parameters:

1. Plant hidden rule weights in the Acquaintance program, evaluate, and
   record the derived tuples' probabilities as observations.
2. Reset the weights to arbitrary values and fit them back by projected
   gradient descent on the squared loss (``repro.learning``).
3. Verify the recovered weights reproduce the observations.

Run with::

    python examples/weight_learning.py
"""

from repro import P3
from repro.data import ACQUAINTANCE
from repro.inference import exact_probability
from repro.learning import TrainingExample, fit_probabilities
from repro.provenance import rule_literal

#: The hidden truth we will try to recover.
PLANTED = {"r1": 0.65, "r2": 0.55, "r3": 0.35}


def main() -> None:
    print("=" * 72)
    print("Step 1: generate observations from hidden rule weights")
    print("=" * 72)
    # Extend the program with a hobby-only pair (Mary shares a hobby with
    # Steve and Elena but lives in another city): without it the data
    # cannot distinguish r1 from r2, because every knowing pair would be
    # connected by BOTH rules at once.
    source = ACQUAINTANCE + 't7 1.0: like("Mary","Veggies").\n'
    for label, weight in PLANTED.items():
        source = source.replace(
            "%s 0.%s:" % (label, {"r1": "8", "r2": "4", "r3": "2"}[label]),
            "%s %s:" % (label, weight))
    hidden = P3.from_source(source)
    hidden.evaluate()

    observations = {}
    for atom in sorted(map(str, hidden.derived_atoms("know"))):
        observations[atom] = hidden.probability_of(atom)
        print("  observed  P[%s] = %.5f" % (atom, observations[atom]))

    print("\n" + "=" * 72)
    print("Step 2: fit the weights back from the observations")
    print("=" * 72)
    model = P3.from_source(
        ACQUAINTANCE + 't7 1.0: like("Mary","Veggies").\n')
    model.evaluate()
    examples = [
        TrainingExample(model.polynomial_of(key), target)
        for key, target in observations.items()
    ]
    modifiable = [rule_literal(label) for label in sorted(PLANTED)]
    print("Starting from the paper's weights: r1=0.8, r2=0.4, r3=0.2")
    result = fit_probabilities(
        examples, model.probabilities, modifiable,
        learning_rate=0.8, max_iterations=500)

    print("Fitted in %d iterations (loss %.2e -> %.2e):"
          % (result.iterations, result.initial_loss, result.final_loss))
    for label in sorted(PLANTED):
        fitted = result.probabilities[rule_literal(label)]
        print("  %s: fitted %.4f   (hidden truth %.2f)"
              % (label, fitted, PLANTED[label]))

    print("\n" + "=" * 72)
    print("Step 3: verify the fitted model reproduces the observations")
    print("=" * 72)
    worst = 0.0
    for key, target in observations.items():
        predicted = exact_probability(
            model.polynomial_of(key), result.probabilities)
        worst = max(worst, abs(predicted - target))
        print("  P[%s] = %.5f  (observed %.5f)" % (key, predicted, target))
    print("Worst absolute error: %.2e" % worst)
    if worst < 1e-3:
        print("Recovered the hidden parameters.")


if __name__ == "__main__":
    main()
