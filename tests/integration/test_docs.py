"""Documentation stays executable: doctests and the README quickstart."""

import doctest
import os
import re

import pytest

import repro.datalog.parser
import repro.datalog.terms
import repro.provenance.polynomial

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", ".."))


class TestDoctests:
    @pytest.mark.parametrize("module", [
        repro.datalog.terms,
        repro.datalog.parser,
        repro.provenance.polynomial,
    ])
    def test_module_doctests(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0  # the docstrings do carry examples


class TestReadme:
    def _python_blocks(self):
        with open(os.path.join(REPO_ROOT, "README.md")) as handle:
            text = handle.read()
        return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)

    def test_quickstart_block_runs(self):
        blocks = self._python_blocks()
        assert blocks, "README must contain a python quickstart"
        namespace = {}
        exec(blocks[0], namespace)  # noqa: S102 - executing our own README
        p3 = namespace["p3"]
        assert p3.probability_of("know", "Ben", "Elena") == pytest.approx(
            0.16384)

    def test_all_python_blocks_run_in_sequence(self):
        # Later blocks (executor batches, live updates) build on the
        # quickstart's `p3`; run them all in one shared namespace.
        namespace = {}
        for block in self._python_blocks():
            exec(block, namespace)  # noqa: S102 - executing our own README
        # The live-update block bumped the epoch exactly once.
        assert namespace["p3"].epoch == 1

    def test_readme_references_existing_files(self):
        with open(os.path.join(REPO_ROOT, "README.md")) as handle:
            text = handle.read()
        for relative in re.findall(r"\]\(((?:docs|examples)/[^)#]+)\)", text):
            assert os.path.exists(os.path.join(REPO_ROOT, relative)), relative


class TestPackageDocs:
    def test_init_quickstart_matches_reality(self):
        # The package docstring promises 0.8 for the simplified program.
        from repro import P3
        p3 = P3.from_source("""
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1!=P2.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
        """)
        p3.evaluate()
        assert p3.probability_of("know", "Steve", "Elena") == pytest.approx(
            0.8)

    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.datalog
        import repro.inference
        import repro.provenance
        import repro.queries
        for module in (repro.datalog, repro.provenance, repro.inference,
                       repro.queries):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
