"""Unit tests for the magic-set transformation and goal-directed querying."""

import pytest

from repro.core.goal import goal_directed_query
from repro.datalog.engine import Engine
from repro.datalog.magic import (
    MagicTransformError,
    adorned_name,
    adornment_of,
    magic_name,
    magic_transform,
    normalize_polynomial,
)
from repro.datalog.parser import parse_program
from repro.datalog.terms import Atom, Constant, Variable, atom as make_atom
from repro.data import ACQUAINTANCE, paper_fragment
from repro.inference import exact_probability
from repro.provenance import (
    GraphBuilder,
    extract_polynomial,
    register_program,
)

TC = """
edge(1,2). edge(2,3). edge(3,4). edge(4,5). edge(10,11).
r1 1.0: path(X,Y) :- edge(X,Y).
r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
"""


def evaluate(program):
    builder = GraphBuilder()
    register_program(builder.graph, program)
    result = Engine(program, recorder=builder, capture_tables=False).run()
    return builder.graph, result


class TestAdornments:
    def test_all_constants_bound(self):
        assert adornment_of(make_atom("p", 1, "a"), set()) == "bb"

    def test_variables_free_unless_bound(self):
        x, y = Variable("X"), Variable("Y")
        atom = Atom("p", (x, y))
        assert adornment_of(atom, set()) == "ff"
        assert adornment_of(atom, {x}) == "bf"

    def test_names(self):
        assert adorned_name("path", "bf") == "path@bf"
        assert magic_name("path", "bf") == "m_path@bf"


class TestTransformValidation:
    def test_rejects_edb_query(self):
        program = parse_program(TC)
        with pytest.raises(MagicTransformError):
            magic_transform(program, make_atom("edge", 1, 2))

    def test_rejects_negation(self):
        program = parse_program("""
            p(1). q(1).
            r1 1.0: a(X) :- p(X), not q(X).
        """)
        with pytest.raises(MagicTransformError):
            magic_transform(program, make_atom("a", 1))


class TestEquivalence:
    def test_bound_bound_answers(self):
        magic = magic_transform(parse_program(TC), make_atom("path", 1, 4))
        graph, _ = evaluate(magic.program)
        assert "path@bb(1,4)" in graph.tuple_keys()

    def test_bound_free_answers_match_full(self):
        pattern = Atom("path", (Constant(1), Variable("X")))
        result = goal_directed_query(
            parse_program(TC), "path", pattern=pattern)
        full_graph, _ = evaluate(parse_program(TC))
        expected = sorted(
            key for key in full_graph.tuple_keys()
            if key.startswith("path(1,"))
        assert result.answers() == expected

    def test_goal_directed_skips_irrelevant_component(self):
        # Node 10-11 is disconnected from the query; magic must not derive
        # any path tuples there.
        pattern = Atom("path", (Constant(1), Variable("X")))
        magic = magic_transform(parse_program(TC), pattern)
        graph, _ = evaluate(magic.program)
        assert not any("10" in key and key.startswith("path@")
                       for key in graph.tuple_keys())

    def test_fewer_firings_on_large_graph(self):
        lines = []
        for index in range(60):
            lines.append("edge(%d,%d)." % (index, index + 1))
        lines.append("r1 1.0: path(X,Y) :- edge(X,Y).")
        lines.append("r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).")
        source = "\n".join(lines)
        _, full = evaluate(parse_program(source))
        magic = magic_transform(parse_program(source),
                                make_atom("path", 0, 5))
        _, directed = evaluate(magic.program)
        assert directed.firing_count < full.firing_count

    def test_provenance_polynomial_identical_trust(self):
        program = paper_fragment().to_program()
        magic = magic_transform(program, make_atom("mutualTrustPath", 1, 6))
        graph, _ = evaluate(magic.program)
        normalized = normalize_polynomial(
            extract_polynomial(graph, "mutualTrustPath@bb(1,6)"), magic)
        full_graph, _ = evaluate(paper_fragment().to_program())
        full_poly = extract_polynomial(full_graph, "mutualTrustPath(1,6)")
        assert normalized == full_poly

    def test_provenance_polynomial_identical_acquaintance(self):
        # Exercises the base-fact bridge (know/2 is IDB with base facts)
        # and the recursive cycle.
        program = parse_program(ACQUAINTANCE)
        magic = magic_transform(program, make_atom("know", "Ben", "Elena"))
        graph, _ = evaluate(magic.program)
        normalized = normalize_polynomial(
            extract_polynomial(graph, 'know@bb("Ben","Elena")'), magic)
        full_graph, _ = evaluate(parse_program(ACQUAINTANCE))
        assert normalized == extract_polynomial(
            full_graph, 'know("Ben","Elena")')

    def test_probability_identical(self):
        program = paper_fragment().to_program()
        magic = magic_transform(program, make_atom("mutualTrustPath", 1, 6))
        graph, _ = evaluate(magic.program)
        normalized = normalize_polynomial(
            extract_polynomial(graph, "mutualTrustPath@bb(1,6)"), magic)
        full_graph, _ = evaluate(paper_fragment().to_program())
        probs = full_graph.probability_map()
        assert exact_probability(normalized, probs) == pytest.approx(
            0.354942, abs=1e-6)


class TestOriginalGraphTranslation:
    def test_hop_limited_extraction_identical(self):
        # The cleaned graph must agree with full evaluation even under hop
        # limits (derivation depths must line up exactly).
        from repro import P3, P3Config
        for limit in (1, 2, 3, None):
            result = goal_directed_query(
                paper_fragment().to_program(), "mutualTrustPath", 1, 6,
                config=P3Config(hop_limit=limit))
            full = P3(paper_fragment().to_program(),
                      P3Config(hop_limit=limit))
            full.evaluate()
            assert result.polynomial_of("mutualTrustPath(1,6)") == \
                full.polynomial_of("mutualTrustPath", 1, 6), \
                "hop limit %r diverged" % limit

    def test_no_magic_artifacts_in_graph(self):
        result = goal_directed_query(
            paper_fragment().to_program(), "mutualTrustPath", 1, 6)
        for key in result.graph.tuple_keys():
            assert "@" not in key
            assert not key.startswith("m_")
        for execution in result.graph.executions():
            assert "@" not in execution.rule_label

    def test_graph_subset_of_full(self):
        from repro import P3
        result = goal_directed_query(
            paper_fragment().to_program(), "mutualTrustPath", 1, 6)
        full = P3(paper_fragment().to_program())
        full.evaluate()
        assert result.graph.tuple_keys() <= full.graph.tuple_keys()
        assert result.graph.executions() <= full.graph.executions()


class TestGoalDirectedFacade:
    def test_ground_query(self):
        result = goal_directed_query(
            paper_fragment().to_program(), "mutualTrustPath", 1, 6)
        assert result.answers() == ["mutualTrustPath(1,6)"]
        assert result.probability_of(
            "mutualTrustPath(1,6)") == pytest.approx(0.354942, abs=1e-6)

    def test_pattern_query(self):
        pattern = Atom("trustPath", (Constant(1), Variable("X")))
        result = goal_directed_query(
            paper_fragment().to_program(), "trustPath", pattern=pattern)
        assert "trustPath(1,6)" in result.answers()

    def test_polynomial_matches_full_evaluation(self):
        from repro import P3
        result = goal_directed_query(
            parse_program(ACQUAINTANCE), "know", "Ben", "Elena")
        p3 = P3.from_source(ACQUAINTANCE)
        p3.evaluate()
        assert result.polynomial_of('know("Ben","Elena")') == \
            p3.polynomial_of("know", "Ben", "Elena")

    def test_unknown_key_raises(self):
        result = goal_directed_query(
            paper_fragment().to_program(), "mutualTrustPath", 1, 6)
        with pytest.raises(KeyError):
            result.polynomial_of("other(1)")


class TestReservedRelations:
    """Programmatically built programs can smuggle in names the parser
    refuses; ``magic_transform`` must reject them with a typed error
    before generating colliding magic relations."""

    def _program_with(self, relation):
        from repro.datalog.ast import Fact, Program, Rule
        rule = Rule(Atom("p", (Variable("X"),)),
                    (Atom(relation, (Variable("X"),)),),
                    label="r1", probability=0.9)
        return Program([rule, Fact(make_atom(relation, 1), label="t1")])

    def test_magic_prefixed_relation_rejected(self):
        from repro.datalog.magic import ReservedRelationError
        program = self._program_with("m_aux")
        with pytest.raises(ReservedRelationError) as info:
            magic_transform(program, make_atom("p", 1))
        assert "m_aux" in info.value.names
        assert "m_aux" in str(info.value)

    def test_adorned_separator_relation_rejected(self):
        from repro.datalog.magic import ReservedRelationError
        program = self._program_with("path@bb")
        with pytest.raises(ReservedRelationError):
            magic_transform(program, make_atom("p", 1))

    def test_reserved_query_relation_rejected(self):
        from repro.datalog.ast import Fact, Program, Rule
        from repro.datalog.magic import ReservedRelationError
        rule = Rule(Atom("m_p", (Variable("X"),)),
                    (Atom("q", (Variable("X"),)),),
                    label="r1", probability=0.9)
        program = Program([rule, Fact(make_atom("q", 1), label="t1")])
        with pytest.raises(ReservedRelationError):
            magic_transform(program, make_atom("m_p", 1))

    def test_error_is_transform_error(self):
        from repro.datalog.magic import ReservedRelationError
        assert issubclass(ReservedRelationError, MagicTransformError)
