"""Tunables for the P3 system facade.

One :class:`P3Config` object collects every knob that recurs across the
query types, so applications configure once instead of threading keyword
arguments through each call.  All fields have the defaults used by the
paper's evaluation where it states them (hop limits 4/6 are per-experiment
and passed explicitly by the benchmark harness).
"""

from __future__ import annotations

from typing import Optional


class P3Config:
    """Configuration for :class:`repro.core.system.P3`.

    Parameters
    ----------
    probability_method:
        Default backend for success probabilities
        ("exact", "bdd", "mc", "parallel", "karp-luby").
    influence_method:
        Default backend for influence queries ("exact", "mc", "parallel").
    samples:
        Monte-Carlo sample budget for estimation backends.
    seed:
        Seed for every stochastic component (None = nondeterministic).
    hop_limit:
        Default hop limit for polynomial extraction (None = unbounded).
    max_monomials:
        Abort extraction when an intermediate polynomial exceeds this
        size (None = unbounded).
    max_rounds / max_tuples:
        Engine safety limits.
    capture_tables:
        Maintain the relational ``prov_``/``rule_`` capture tables during
        evaluation (Section 3.2) in addition to the live graph.
    """

    def __init__(self,
                 probability_method: str = "exact",
                 influence_method: str = "exact",
                 samples: int = 10000,
                 seed: Optional[int] = None,
                 hop_limit: Optional[int] = None,
                 max_monomials: Optional[int] = None,
                 max_rounds: Optional[int] = None,
                 max_tuples: Optional[int] = None,
                 capture_tables: bool = True) -> None:
        if samples <= 0:
            raise ValueError("samples must be positive")
        if hop_limit is not None and hop_limit <= 0:
            raise ValueError("hop_limit must be positive or None")
        self.probability_method = probability_method
        self.influence_method = influence_method
        self.samples = samples
        self.seed = seed
        self.hop_limit = hop_limit
        self.max_monomials = max_monomials
        self.max_rounds = max_rounds
        self.max_tuples = max_tuples
        self.capture_tables = capture_tables

    def replace(self, **overrides: object) -> "P3Config":
        """A copy with some fields replaced."""
        fields = {
            "probability_method": self.probability_method,
            "influence_method": self.influence_method,
            "samples": self.samples,
            "seed": self.seed,
            "hop_limit": self.hop_limit,
            "max_monomials": self.max_monomials,
            "max_rounds": self.max_rounds,
            "max_tuples": self.max_tuples,
            "capture_tables": self.capture_tables,
        }
        unknown = set(overrides) - set(fields)
        if unknown:
            raise TypeError("Unknown config fields: %s" % ", ".join(sorted(unknown)))
        fields.update(overrides)  # type: ignore[arg-type]
        return P3Config(**fields)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            "P3Config(probability_method=%r, influence_method=%r, samples=%d,"
            " seed=%r, hop_limit=%r)" % (
                self.probability_method, self.influence_method,
                self.samples, self.seed, self.hop_limit,
            )
        )
