"""Paper-style results tables: formatting, persistence, registry.

Benchmarks call :func:`record_table`; the benchmarks' conftest prints every
recorded table in the pytest terminal summary, and a copy is written to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md to cite.
"""

from __future__ import annotations

import os
from typing import List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_TABLES: List[str] = []


def paper_scale() -> bool:
    """True when the operator asked for the paper's original sizes."""
    return os.environ.get("P3_BENCH_SCALE", "").lower() == "paper"


def record_table(name: str, title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Format, persist, and register a paper-style results table."""
    widths = [len(str(h)) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [_fmt(cell) for cell in row]
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
        rendered_rows.append(rendered)
    lines = [title]
    lines.append("  " + "  ".join(
        str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  " + "  ".join(
            cell.ljust(w) for cell, w in zip(rendered, widths)))
    text = "\n".join(lines)
    _TABLES.append(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")
    return text


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.4f" % cell
    return str(cell)


def recorded_tables() -> List[str]:
    return list(_TABLES)
