"""Modification Query (Section 4.4): reach a target probability cheaply.

Given a queried tuple with success probability P[λ] and a target value, the
Modification Query proposes probability changes to individual literals so
that the new success probability reaches the target, minimising the total
cost Σ|Δp(xᵢ)| (Equation 17).

The paper's heuristic (reproduced as :func:`greedy_strategy`) exploits
Equation 16: viewing P[λ] as a function of one literal's probability,

    P[λ] = Inf_x(λ) · p(x) + P[λ | x=0],

i.e. linear in p(x) with slope equal to the influence.  Greedily picking
the most influential literal each round therefore moves the probability
fastest per unit of cost; when even p(x) ∈ {0, 1} is not enough the next
most influential literal is selected, and the final step solves the linear
equation exactly for the fractional change.

:func:`random_strategy` is the baseline of Table 7 — pick an arbitrary
modifiable literal each round and push it all the way (solving exactly on
the final, overshooting step).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..inference.exact import exact_probability
from ..provenance.polynomial import Literal, Polynomial, ProbabilityMap
from .result import QueryResult, register_result

#: Evaluates P[λ] under a probability map during the search.
Evaluator = Callable[[Polynomial, ProbabilityMap], float]


class ModificationStep:
    """One change in a modification plan."""

    __slots__ = ("literal", "old_probability", "new_probability",
                 "resulting_probability")

    def __init__(self, literal: Literal, old_probability: float,
                 new_probability: float, resulting_probability: float) -> None:
        self.literal = literal
        self.old_probability = old_probability
        self.new_probability = new_probability
        self.resulting_probability = resulting_probability

    @property
    def cost(self) -> float:
        return abs(self.new_probability - self.old_probability)

    def __repr__(self) -> str:
        return "ModificationStep(%s: %.4g -> %.4g, P=%.4f)" % (
            self.literal, self.old_probability, self.new_probability,
            self.resulting_probability,
        )


@register_result
class ModificationPlan(QueryResult):
    """Result of a Modification Query: ordered steps plus outcome."""

    query_type = "modification"

    def __init__(self, steps: Sequence[ModificationStep],
                 initial_probability: float, final_probability: float,
                 target: float, reached: bool, strategy: str) -> None:
        self.steps = tuple(steps)
        self.initial_probability = initial_probability
        self.final_probability = final_probability
        self.target = target
        self.reached = reached
        self.strategy = strategy

    @property
    def total_cost(self) -> float:
        """Σ|Δp| over all steps (Equation 17)."""
        return sum(step.cost for step in self.steps)

    def updated_probabilities(
            self, probabilities: ProbabilityMap) -> Dict[Literal, float]:
        """Apply the plan to a probability map (returns a new dict)."""
        updated = dict(probabilities)
        for step in self.steps:
            updated[step.literal] = step.new_probability
        return updated

    def to_text(self) -> str:
        lines = [
            "Modification plan (%s): P %.4f -> %.4f (target %.4f, %s)"
            % (self.strategy, self.initial_probability,
               self.final_probability, self.target,
               "reached" if self.reached else "NOT reached"),
        ]
        for index, step in enumerate(self.steps, start=1):
            lines.append(
                "  Step %d: %s  %.4g -> %.4g   (overall P=%.4f)"
                % (index, step.literal, step.old_probability,
                   step.new_probability, step.resulting_probability))
        lines.append("  total change = %.4g" % self.total_cost)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "target": self.target,
            "initial_probability": self.initial_probability,
            "final_probability": self.final_probability,
            "reached": self.reached,
            "total_cost": self.total_cost,
            "steps": [
                {"literal": {"kind": step.literal.kind,
                             "key": step.literal.key},
                 "old_probability": step.old_probability,
                 "new_probability": step.new_probability,
                 "resulting_probability": step.resulting_probability}
                for step in self.steps
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModificationPlan":
        steps = [
            ModificationStep(
                Literal(entry["literal"]["kind"], entry["literal"]["key"]),
                entry["old_probability"], entry["new_probability"],
                entry["resulting_probability"])
            for entry in payload["steps"]
        ]
        return cls(steps, payload["initial_probability"],
                   payload["final_probability"], payload["target"],
                   payload["reached"], payload["strategy"])

    def summary(self) -> str:
        return "%s: P %.4f -> %.4f (target %.4f, %d steps, %s)" % (
            self.strategy, self.initial_probability, self.final_probability,
            self.target, len(self.steps),
            "reached" if self.reached else "not reached")

    def __repr__(self) -> str:
        return "ModificationPlan(%s, %d steps, cost=%.4f, %s)" % (
            self.strategy, len(self.steps), self.total_cost,
            "reached" if self.reached else "not reached",
        )


class ModificationError(RuntimeError):
    """Raised for unreachable targets or invalid parameters."""


def _solve_step(polynomial: Polynomial, probabilities: Dict[Literal, float],
                literal: Literal, target: float,
                evaluator: Evaluator) -> Tuple[float, float, float]:
    """Solve Equation 16 for p(x): the probability value reaching ``target``.

    Returns (influence, p_at_zero, required_p_clamped).
    """
    low = evaluator(polynomial.restrict(literal, False), probabilities)
    high = evaluator(polynomial.restrict(literal, True), probabilities)
    influence = high - low
    if influence <= 0.0:
        return influence, low, probabilities[literal]
    required = (target - low) / influence
    return influence, low, min(1.0, max(0.0, required))


def greedy_strategy(polynomial: Polynomial,
                    probabilities: ProbabilityMap,
                    target: float,
                    modifiable: Optional[Callable[[Literal], bool]] = None,
                    tolerance: float = 1e-9,
                    max_steps: Optional[int] = None,
                    evaluator: Optional[Evaluator] = None) -> ModificationPlan:
    """The paper's heuristic: most influential literal first (Section 4.4).

    ``modifiable`` restricts which literals may change (e.g. only base
    tuples for Query 2C; only rules to propose program fixes).  The plan
    stops when the target is reached within ``tolerance``, when no literal
    can make further progress, or after ``max_steps`` steps.
    """
    if not 0.0 <= target <= 1.0:
        raise ModificationError("Target probability must be in [0, 1]")
    if evaluator is None:
        evaluator = exact_probability
    working: Dict[Literal, float] = dict(probabilities)
    candidates = [
        literal for literal in sorted(polynomial.literals())
        if modifiable is None or modifiable(literal)
    ]
    initial = evaluator(polynomial, working)
    current = initial
    increase = target > current
    steps: List[ModificationStep] = []
    used: set = set()

    while abs(current - target) > tolerance:
        if max_steps is not None and len(steps) >= max_steps:
            break
        best: Optional[Tuple[float, Literal, float]] = None
        for literal in candidates:
            if literal in used:
                continue
            p = working[literal]
            # Skip literals already saturated in the needed direction.
            if increase and p >= 1.0:
                continue
            if not increase and p <= 0.0:
                continue
            influence, low, required = _solve_step(
                polynomial, working, literal, target, evaluator)
            if influence <= tolerance:
                continue
            if best is None or influence > best[0]:
                best = (influence, literal, required)
        if best is None:
            break
        influence, literal, required = best
        old_p = working[literal]
        if abs(required - old_p) <= tolerance:
            # The slope is positive but this literal cannot move P any
            # closer (already at the required value); exclude and continue.
            used.add(literal)
            continue
        working[literal] = required
        current = evaluator(polynomial, working)
        steps.append(ModificationStep(literal, old_p, required, current))
        used.add(literal)

    reached = abs(current - target) <= max(tolerance, 1e-9)
    return ModificationPlan(steps, initial, current, target, reached, "greedy")


def random_strategy(polynomial: Polynomial,
                    probabilities: ProbabilityMap,
                    target: float,
                    modifiable: Optional[Callable[[Literal], bool]] = None,
                    seed: Optional[int] = None,
                    tolerance: float = 1e-9,
                    max_steps: Optional[int] = None,
                    evaluator: Optional[Evaluator] = None) -> ModificationPlan:
    """Baseline: modify uniformly random literals (Table 7's comparison).

    Each round a random not-yet-used literal is pushed fully toward the
    target direction; if that overshoots, the step solves Equation 16
    exactly, mirroring the paper's random strategy whose final step is
    fractional.
    """
    if not 0.0 <= target <= 1.0:
        raise ModificationError("Target probability must be in [0, 1]")
    if evaluator is None:
        evaluator = exact_probability
    rng = random.Random(seed)
    working: Dict[Literal, float] = dict(probabilities)
    candidates = [
        literal for literal in sorted(polynomial.literals())
        if modifiable is None or modifiable(literal)
    ]
    initial = evaluator(polynomial, working)
    current = initial
    increase = target > current
    steps: List[ModificationStep] = []
    remaining = list(candidates)

    while abs(current - target) > tolerance and remaining:
        if max_steps is not None and len(steps) >= max_steps:
            break
        literal = remaining.pop(rng.randrange(len(remaining)))
        old_p = working[literal]
        if increase and old_p >= 1.0:
            continue
        if not increase and old_p <= 0.0:
            continue
        influence, low, required = _solve_step(
            polynomial, working, literal, target, evaluator)
        if influence <= tolerance:
            continue
        extreme = 1.0 if increase else 0.0
        reaches_target = (required < 1.0 if increase else required > 0.0)
        new_p = required if reaches_target else extreme
        if abs(new_p - old_p) <= tolerance:
            continue
        working[literal] = new_p
        current = evaluator(polynomial, working)
        steps.append(ModificationStep(literal, old_p, new_p, current))

    reached = abs(current - target) <= max(tolerance, 1e-9)
    return ModificationPlan(steps, initial, current, target, reached, "random")


def modification_query(polynomial: Polynomial,
                       probabilities: ProbabilityMap,
                       target: float,
                       strategy: str = "greedy",
                       modifiable: Optional[Callable[[Literal], bool]] = None,
                       seed: Optional[int] = None,
                       tolerance: float = 1e-9,
                       max_steps: Optional[int] = None,
                       evaluator: Optional[Evaluator] = None
                       ) -> ModificationPlan:
    """Front door: run a Modification Query with the chosen strategy."""
    rt = telemetry.runtime()
    if not rt.enabled:
        return _modification_query(
            polynomial, probabilities, target, strategy, modifiable, seed,
            tolerance, max_steps, evaluator)
    with rt.tracer.span("query.modify", strategy=strategy,
                        target=target) as span:
        plan = _modification_query(
            polynomial, probabilities, target, strategy, modifiable, seed,
            tolerance, max_steps, evaluator)
        span.set_attributes(steps=len(plan.steps), reached=plan.reached)
    return plan


def _modification_query(polynomial: Polynomial,
                        probabilities: ProbabilityMap,
                        target: float,
                        strategy: str,
                        modifiable: Optional[Callable[[Literal], bool]],
                        seed: Optional[int],
                        tolerance: float,
                        max_steps: Optional[int],
                        evaluator: Optional[Evaluator]) -> ModificationPlan:
    if strategy == "greedy":
        return greedy_strategy(
            polynomial, probabilities, target, modifiable=modifiable,
            tolerance=tolerance, max_steps=max_steps, evaluator=evaluator)
    if strategy == "random":
        return random_strategy(
            polynomial, probabilities, target, modifiable=modifiable,
            seed=seed, tolerance=tolerance, max_steps=max_steps,
            evaluator=evaluator)
    raise ValueError(
        "Unknown modification strategy %r (expected greedy/random)" % strategy)
