"""Unit and property tests for incremental provenance maintenance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.ast import ClauseError, Fact
from repro.datalog.engine import Engine, EvaluationError
from repro.datalog.incremental import IncrementalSession
from repro.datalog.parser import parse_program
from repro.datalog.terms import atom as make_atom
from repro.provenance.extraction import extract_polynomial
from repro.provenance.graph import GraphBuilder, register_program

TC = """
edge(1,2). edge(2,3).
r1 1.0: path(X,Y) :- edge(X,Y).
r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
"""


def atoms(database, relation=None):
    return {str(atom) for atom in database.atoms(relation)}


def scratch(source):
    """From-scratch evaluation returning (atoms, firing_count, graph)."""
    program = parse_program(source)
    builder = GraphBuilder()
    register_program(builder.graph, program)
    result = Engine(program, recorder=builder, capture_tables=False).run()
    return ({str(a) for a in result.database.atoms()},
            result.firing_count, builder.graph)


class TestInitialRun:
    def test_matches_engine(self):
        session = IncrementalSession(parse_program(TC),
                                     capture_tables=False)
        expected, firings, _ = scratch(TC)
        assert atoms(session.database) == expected
        assert session.firing_count == firings

    def test_rejects_negation(self):
        program = parse_program("""
            p(1). q(2).
            r1 1.0: a(X) :- p(X), not q(X).
        """)
        with pytest.raises(ClauseError):
            IncrementalSession(program)


class TestInsertion:
    def test_single_fact_extends_closure(self):
        session = IncrementalSession(parse_program(TC),
                                     capture_tables=False)
        delta = session.add_fact(Fact(make_atom("edge", 3, 4), 1.0, "n1"))
        assert delta.firing_count > 0
        assert "path(1,4)" in atoms(session.database, "path")
        assert "path(3,4)" in atoms(session.database, "path")

    def test_equivalent_to_scratch(self):
        session = IncrementalSession(parse_program(TC),
                                     capture_tables=False)
        session.add_fact(Fact(make_atom("edge", 3, 4), 1.0, "n1"))
        session.add_fact(Fact(make_atom("edge", 4, 1), 1.0, "n2"))
        expected, firings, _ = scratch(
            TC + "n1 1.0: edge(3,4). n2 1.0: edge(4,1).")
        assert atoms(session.database) == expected
        assert session.firing_count == firings

    def test_cycle_created_by_insertion(self):
        # Inserting edge(3,1) closes a cycle; the model must match scratch.
        session = IncrementalSession(parse_program(TC),
                                     capture_tables=False)
        session.add_fact(Fact(make_atom("edge", 3, 1), 1.0, "n1"))
        expected, firings, _ = scratch(TC + "n1 1.0: edge(3,1).")
        assert atoms(session.database) == expected
        assert session.firing_count == firings

    def test_duplicate_fact_is_noop(self):
        session = IncrementalSession(parse_program(TC),
                                     capture_tables=False)
        before = session.firing_count
        delta = session.add_fact(Fact(make_atom("edge", 1, 2), 1.0, "dup"))
        assert delta.firing_count == 0
        assert session.firing_count == before

    def test_duplicate_label_rejected(self):
        session = IncrementalSession(parse_program(TC),
                                     capture_tables=False)
        with pytest.raises(ClauseError):
            session.add_fact(Fact(make_atom("edge", 9, 9 + 1), 1.0, "t1"))

    def test_batch_insertion(self):
        session = IncrementalSession(parse_program(TC),
                                     capture_tables=False)
        session.add_facts([
            Fact(make_atom("edge", 3, 4), 0.5, "n1"),
            Fact(make_atom("edge", 4, 5), 0.5, "n2"),
        ])
        assert "path(1,5)" in atoms(session.database, "path")
        assert session.insertions == 1

    def test_max_tuples_enforced_on_insertion(self):
        session = IncrementalSession(parse_program(TC),
                                     capture_tables=False, max_tuples=8)
        with pytest.raises(EvaluationError):
            session.add_facts([
                Fact(make_atom("edge", 3, 4), 1.0, "n1"),
                Fact(make_atom("edge", 4, 5), 1.0, "n2"),
            ])


class TestProvenanceGrowth:
    def test_graph_identical_to_scratch(self):
        program = parse_program(TC)
        builder = GraphBuilder()
        register_program(builder.graph, program)
        session = IncrementalSession(program, recorder=builder,
                                     capture_tables=False)
        session.add_fact(Fact(make_atom("edge", 3, 1), 0.8, "n1"))

        _, _, scratch_graph = scratch(TC + "n1 0.8: edge(3,1).")
        assert builder.graph.executions() == scratch_graph.executions()
        for key in ("path(1,1)", "path(3,2)"):
            incremental = extract_polynomial(builder.graph, key)
            from_scratch = extract_polynomial(scratch_graph, key)
            assert incremental == from_scratch

    def test_probability_map_includes_new_fact(self):
        program = parse_program(TC)
        builder = GraphBuilder()
        register_program(builder.graph, program)
        session = IncrementalSession(program, recorder=builder,
                                     capture_tables=False)
        session.add_fact(Fact(make_atom("edge", 3, 4), 0.3, "n1"))
        from repro.provenance.polynomial import tuple_literal
        assert builder.graph.probability_map()[
            tuple_literal("edge(3,4)")] == 0.3


@st.composite
def edge_batches(draw):
    nodes = list(range(4))
    pairs = [(a, b) for a in nodes for b in nodes if a != b]
    initial = draw(st.permutations(pairs))[:draw(st.integers(1, 4))]
    later = [p for p in draw(st.permutations(pairs))
             if p not in initial][:draw(st.integers(1, 4))]
    return sorted(initial), sorted(later)


class TestIncrementalEqualsScratchProperty:
    @settings(max_examples=30, deadline=None)
    @given(edge_batches())
    def test_any_insertion_order_matches_scratch(self, batches):
        initial, later = batches
        source = "\n".join(
            ["e%d 0.5: edge(%d,%d)." % (i, a, b)
             for i, (a, b) in enumerate(initial)]
            + ["r1 1.0: path(X,Y) :- edge(X,Y).",
               "r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z)."])
        session = IncrementalSession(parse_program(source),
                                     capture_tables=False)
        for index, (a, b) in enumerate(later):
            session.add_fact(Fact(make_atom("edge", a, b), 0.5,
                                  "x%d" % index))

        full_source = source + "\n" + "\n".join(
            "x%d 0.5: edge(%d,%d)." % (i, a, b)
            for i, (a, b) in enumerate(later))
        expected, firings, _ = scratch(full_source)
        assert atoms(session.database) == expected
        assert session.firing_count == firings
