"""Unit tests for literals, monomials, and provenance polynomials."""

import pytest

from repro.provenance.polynomial import (
    Literal,
    Monomial,
    Polynomial,
    rule_literal,
    tuple_literal,
    variable_order,
)

A = tuple_literal("a")
B = tuple_literal("b")
C = tuple_literal("c")
R1 = rule_literal("r1")


class TestLiteral:
    def test_kinds(self):
        assert tuple_literal("t").is_tuple
        assert rule_literal("r").is_rule

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            Literal("other", "x")

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            tuple_literal("")

    def test_equality_and_hash(self):
        assert tuple_literal("a") == tuple_literal("a")
        assert tuple_literal("a") != rule_literal("a")
        assert len({tuple_literal("a"), tuple_literal("a")}) == 1

    def test_ordering(self):
        assert sorted([tuple_literal("b"), rule_literal("a")]) == [
            rule_literal("a"), tuple_literal("b"),
        ]

    def test_immutable(self):
        with pytest.raises(AttributeError):
            A.key = "other"

    def test_str_is_key(self):
        assert str(A) == "a"


class TestMonomial:
    def test_empty_is_true(self):
        assert Monomial().is_empty
        assert str(Monomial()) == "1"

    def test_idempotent_product(self):
        assert Monomial([A, A]) == Monomial([A])

    def test_union(self):
        assert Monomial([A]).union(Monomial([B])) == Monomial([A, B])

    def test_contains_and_without(self):
        monomial = Monomial([A, B])
        assert monomial.contains(A)
        assert monomial.without(A) == Monomial([B])

    def test_subsumes(self):
        assert Monomial([A]).subsumes(Monomial([A, B]))
        assert not Monomial([A, B]).subsumes(Monomial([A]))

    def test_probability_is_product(self):
        probs = {A: 0.5, B: 0.4}
        assert Monomial([A, B]).probability(probs) == pytest.approx(0.2)

    def test_empty_probability_is_one(self):
        assert Monomial().probability({}) == 1.0

    def test_evaluate(self):
        monomial = Monomial([A, B])
        assert monomial.evaluate({A: True, B: True})
        assert not monomial.evaluate({A: True, B: False})

    def test_str_sorted(self):
        assert str(Monomial([B, A])) == "a·b"

    def test_rejects_non_literaccording(self):
        with pytest.raises(TypeError):
            Monomial(["raw"])


class TestPolynomialConstruction:
    def test_zero(self):
        assert Polynomial.zero().is_zero
        assert str(Polynomial.zero()) == "0"

    def test_one(self):
        assert Polynomial.one().is_one
        assert len(Polynomial.one()) == 1

    def test_of(self):
        poly = Polynomial.of([A, B])
        assert len(poly) == 1
        assert poly.literals() == frozenset({A, B})

    def test_from_monomials(self):
        poly = Polynomial.from_monomials([[A], [B]])
        assert len(poly) == 2

    def test_absorption_on_construction(self):
        poly = Polynomial([Monomial([A]), Monomial([A, B])])
        assert poly == Polynomial.of([A])

    def test_duplicate_monomials_collapse(self):
        poly = Polynomial([Monomial([A]), Monomial([A])])
        assert len(poly) == 1


class TestPolynomialAlgebra:
    def test_addition_unions(self):
        poly = Polynomial.of([A]) + Polynomial.of([B])
        assert len(poly) == 2

    def test_addition_zero_identity(self):
        poly = Polynomial.of([A])
        assert poly + Polynomial.zero() == poly
        assert Polynomial.zero() + poly == poly

    def test_addition_absorbs(self):
        assert (Polynomial.of([A]) + Polynomial.of([A, B])) == Polynomial.of([A])

    def test_multiplication_cross_product(self):
        left = Polynomial.of([A]) + Polynomial.of([B])
        right = Polynomial.of([C])
        product = left * right
        assert product == Polynomial.from_monomials([[A, C], [B, C]])

    def test_multiplication_zero_annihilates(self):
        assert (Polynomial.of([A]) * Polynomial.zero()).is_zero

    def test_multiplication_one_identity(self):
        poly = Polynomial.of([A])
        assert poly * Polynomial.one() == poly
        assert Polynomial.one() * poly == poly

    def test_multiplication_absorbs(self):
        # (a + b)·(a) = a + a·b = a
        left = Polynomial.of([A]) + Polynomial.of([B])
        assert left * Polynomial.of([A]) == Polynomial.of([A])

    def test_times_literal(self):
        poly = Polynomial.from_monomials([[A], [B]])
        assert poly.times_literal(C) == Polynomial.from_monomials(
            [[A, C], [B, C]])

    def test_distributivity(self):
        x = Polynomial.of([A])
        y = Polynomial.of([B])
        z = Polynomial.of([C])
        assert x * (y + z) == x * y + x * z

    def test_commutativity(self):
        x = Polynomial.from_monomials([[A], [B]])
        y = Polynomial.from_monomials([[C]])
        assert x * y == y * x
        assert x + y == y + x


class TestRestrict:
    def test_restrict_true_removes_literal(self):
        poly = Polynomial.from_monomials([[A, B], [C]])
        assert poly.restrict(A, True) == Polynomial.from_monomials([[B], [C]])

    def test_restrict_false_drops_monomials(self):
        poly = Polynomial.from_monomials([[A, B], [C]])
        assert poly.restrict(A, False) == Polynomial.of([C])

    def test_restrict_true_can_reach_one(self):
        poly = Polynomial.of([A])
        assert poly.restrict(A, True).is_one

    def test_restrict_false_can_reach_zero(self):
        poly = Polynomial.of([A])
        assert poly.restrict(A, False).is_zero

    def test_restrict_absent_literal_noop(self):
        poly = Polynomial.of([A])
        assert poly.restrict(B, True) == poly
        assert poly.restrict(B, False) == poly

    def test_restrict_triggers_absorption(self):
        # b + a·c --a=1--> b + c
        poly = Polynomial.from_monomials([[B], [A, B]])
        assert poly.restrict(A, True) == Polynomial.of([B])


class TestEvaluationAndInspection:
    def test_evaluate_dnf(self):
        poly = Polynomial.from_monomials([[A, B], [C]])
        assert poly.evaluate({A: True, B: True, C: False})
        assert poly.evaluate({A: False, B: False, C: True})
        assert not poly.evaluate({A: True, B: False, C: False})

    def test_zero_evaluates_false(self):
        assert not Polynomial.zero().evaluate({})

    def test_one_evaluates_true(self):
        assert Polynomial.one().evaluate({})

    def test_literal_partition(self):
        poly = Polynomial.from_monomials([[A, R1], [B]])
        assert poly.tuple_literals() == frozenset({A, B})
        assert poly.rule_literals() == frozenset({R1})

    def test_monomials_by_probability(self):
        poly = Polynomial.from_monomials([[A], [B]])
        probs = {A: 0.9, B: 0.1}
        ranked = poly.monomials_by_probability(probs)
        assert ranked[0] == (Monomial([A]), 0.9)
        ascending = poly.monomials_by_probability(probs, descending=False)
        assert ascending[0][1] == pytest.approx(0.1)

    def test_without_monomials(self):
        poly = Polynomial.from_monomials([[A], [B]])
        assert poly.without_monomials([Monomial([A])]) == Polynomial.of([B])

    def test_str_canonical(self):
        poly = Polynomial.from_monomials([[B], [A]])
        assert str(poly) == "a + b"


class TestVariableOrder:
    def test_most_frequent_first(self):
        poly = Polynomial.from_monomials([[A, B], [A, C], [A]])
        # absorption reduces this to just [A]; use non-absorbing structure
        poly = Polynomial.from_monomials([[A, B], [A, C], [B, C]])
        order = variable_order(poly)
        assert set(order[:3]) == {A, B, C}

    def test_ties_broken_by_name(self):
        poly = Polynomial.from_monomials([[A, B]])
        assert variable_order(poly) == (A, B)

    def test_empty_polynomial(self):
        assert variable_order(Polynomial.zero()) == ()
