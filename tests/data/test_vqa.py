"""Unit tests for the VQA scene substrate and Section 5.1 narrative."""

import pytest

from repro import P3, P3Config
from repro.data.vqa import (
    DICTIONARY_WORDS,
    FIXED_CHURCH_CROSS_SIMILARITY,
    IMAGE_ID,
    VQAScene,
    fixed_scene,
    modified_scene,
    original_scene,
)

HOP_LIMIT = 8


def evaluate(scene):
    p3 = P3(scene.to_program(), P3Config(hop_limit=HOP_LIMIT))
    p3.evaluate()
    return p3


def best_answer(p3):
    ranked = sorted(
        ((atom.as_values()[1], p3.probability_of(str(atom)))
         for atom in p3.derived_atoms("ans")),
        key=lambda pair: -pair[1])
    return ranked


class TestSceneConstruction:
    def test_similarities_mirrored(self):
        scene = VQAScene("test")
        scene.add_similarity("a", "b", 0.4)
        keys = {str(f.atom): f.probability for f in scene.to_facts()
                if f.atom.relation == "sim"}
        assert keys['sim("a","b")'] == 0.4
        assert keys['sim("b","a")'] == 0.4

    def test_identity_similarity_added(self):
        scene = VQAScene("test")
        scene.add_word("barn")
        keys = {str(f.atom) for f in scene.to_facts()}
        assert 'sim("barn","barn")' in keys

    def test_rejects_invalid_similarity(self):
        scene = VQAScene("test")
        with pytest.raises(ValueError):
            scene.add_similarity("a", "b", 1.5)

    def test_copy_is_independent(self):
        scene = modified_scene()
        clone = scene.copy("clone")
        clone.set_similarity("church", "cross", 0.99)
        assert scene.similarities[("church", "cross")] == 0.09

    def test_all_dictionary_words_become_candidates(self):
        p3 = evaluate(modified_scene())
        candidates = {a.as_values()[1]
                      for a in p3.derived_atoms("candidate")}
        assert candidates >= set(DICTIONARY_WORDS)

    def test_program_uses_figure5_rules(self):
        program = modified_scene().to_program()
        assert {r.label for r in program.rules} == {"r1", "r2", "r3", "r4"}


class TestNarrative:
    def test_original_photo_answers_barn(self):
        ranked = best_answer(evaluate(original_scene()))
        assert ranked[0][0] == "barn"

    def test_modified_photo_still_answers_barn(self):
        # The bug the case study debugs: the photo now shows a church but
        # barn still wins because sim("church","cross") is too low.
        ranked = best_answer(evaluate(modified_scene()))
        assert ranked[0][0] == "barn"
        words = [word for word, _ in ranked]
        assert "church" in words

    def test_fixed_scene_answers_church(self):
        ranked = best_answer(evaluate(fixed_scene()))
        assert ranked[0][0] == "church"

    def test_fix_value_matches_paper(self):
        assert FIXED_CHURCH_CROSS_SIMILARITY == pytest.approx(0.51)
        assert fixed_scene().similarities[("church", "cross")] == 0.51


class TestQuery1B:
    @pytest.fixture(scope="class")
    def p3(self):
        return evaluate(modified_scene())

    def test_most_influential_word_is_barn(self, p3):
        report = p3.influence("ans", IMAGE_ID, "barn", relation="word")
        assert str(report.most_influential.literal) == (
            'word("ID1","barn")')

    def test_most_influential_image_fact_mentions_scene_object(self, p3):
        report = p3.influence("ans", IMAGE_ID, "barn", relation="hasImg")
        top = str(report.most_influential.literal)
        assert top.startswith('hasImg("ID1"')

    def test_table4_unique_influential_ordering(self, p3):
        barn_literals = p3.polynomial_of("ans", IMAGE_ID, "barn").literals()
        report = p3.influence("ans", IMAGE_ID, "church", relation="sim")
        unique = [s for s in report if s.literal not in barn_literals]
        top3 = [str(s.literal) for s in unique[:3]]
        assert top3 == [
            'sim("church","cross")',
            'sim("church","horse")',
            'sim("church","cloud")',
        ]


class TestQuery1C:
    def test_modification_raises_church_similarity(self):
        p3 = evaluate(modified_scene())
        target = p3.probability_of("ans", IMAGE_ID, "barn")
        suspect = p3.literal('sim("church","cross")')
        plan = p3.modify("ans", IMAGE_ID, "church", target=target,
                         modifiable=lambda lit: lit == suspect)
        assert plan.reached
        [step] = plan.steps
        assert step.new_probability > 0.3  # well above the buggy 0.09
