"""Deliberate fault injection: prove the harness catches real bugs.

Each named fault reintroduces a defect of a class this repo has actually
shipped (or that differential testing exists to catch), by swapping a
backend's implementation through the registry's
:func:`~repro.inference.registry.override_backend` hook.  The harness's
own test suite injects a fault, runs an audit sweep, and asserts the
sweep goes red and shrinks the failure to a replay file — so a silent
regression in the oracle itself cannot go unnoticed.

Faults:

- ``karp-luby-clamp`` — the historical Karp–Luby bug fixed in this PR:
  clamp the unbiased estimate at 1.0 and report a plain Bernoulli
  standard error without the union-weight scale.  Detectable by mean-of-
  repeats: the bias is a fixed fraction of one run's standard error, so
  averaging R runs grows the bias-to-error ratio like √R.
- ``exact-offset`` — an exact backend that is off by a small constant
  (the canonical "wrong but plausible" regression).
- ``mc-stale-seed`` — a Monte-Carlo backend that ignores its seed,
  making repeated runs identical (scatter collapses to zero; the
  across-repeat check exists for exactly this).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Tuple

from ..provenance.polynomial import Polynomial, ProbabilityMap
from ..inference.karp_luby import karp_luby_probability
from ..inference.montecarlo import monte_carlo_probability
from ..inference.registry import BackendReading, override_backend
from ..inference.request import InferenceRequest


def _clamped_karp_luby(polynomial: Polynomial,
                       probabilities: ProbabilityMap,
                       request: InferenceRequest) -> BackendReading:
    """The pre-fix Karp–Luby: clamped value, unscaled standard error."""
    import math
    estimate = karp_luby_probability(
        polynomial, probabilities, samples=request.samples,
        seed=request.seed)
    clamped = min(1.0, estimate.value)
    rate = estimate.success_rate
    naive_stderr = math.sqrt(rate * (1.0 - rate) / request.samples) \
        if request.samples else float("inf")
    return BackendReading("karp-luby", clamped, stderr=naive_stderr,
                          exact=False)


def _offset_exact(polynomial: Polynomial, probabilities: ProbabilityMap,
                  request: InferenceRequest) -> BackendReading:
    from ..inference.exact import exact_probability
    return BackendReading(
        "exact", exact_probability(polynomial, probabilities) + 1e-6)


def _stale_seed_mc(polynomial: Polynomial, probabilities: ProbabilityMap,
                   request: InferenceRequest) -> BackendReading:
    estimate = monte_carlo_probability(
        polynomial, probabilities, samples=request.samples, seed=1234)
    return BackendReading("mc", estimate.value,
                          stderr=estimate.standard_error, exact=False)


_FAULTS = {
    "karp-luby-clamp": ("karp-luby", _clamped_karp_luby),
    "exact-offset": ("exact", _offset_exact),
    "mc-stale-seed": ("mc", _stale_seed_mc),
}

#: The injectable fault names, for CLI/docs enumeration.
FAULT_NAMES: Tuple[str, ...] = tuple(sorted(_FAULTS))


@contextlib.contextmanager
def inject_fault(name: str) -> Iterator[str]:
    """Context manager: run with the named fault swapped into the registry.

    Yields the name of the affected backend; the genuine implementation
    is restored on exit.
    """
    try:
        backend_name, fn = _FAULTS[name]
    except KeyError:
        raise ValueError(
            "Unknown fault %r (expected one of %s)"
            % (name, ", ".join(FAULT_NAMES)))
    with override_backend(backend_name, fn):
        yield backend_name
