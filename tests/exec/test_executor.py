"""Integration tests for the batch QueryExecutor."""

import pytest

from repro import P3, P3Config
from repro.core.errors import UnknownTupleError
from repro.data import ACQUAINTANCE
from repro.exec import BatchResult, QueryExecutor, QuerySpec
from repro.queries import Explanation, InfluenceReport, ModificationPlan
from repro.queries.derivation import SufficientProvenance

KEY = 'know("Ben","Elena")'
KEY_PROBABILITY = 0.163840


@pytest.fixture()
def system():
    p3 = P3.from_source(ACQUAINTANCE)
    p3.evaluate()
    return p3


@pytest.fixture()
def executor(system):
    with QueryExecutor(system) as executor:
        yield executor


class TestProbability:
    def test_matches_facade(self, system, executor):
        assert executor.probability(KEY) == pytest.approx(KEY_PROBABILITY)
        assert system.probability_of(KEY) == pytest.approx(KEY_PROBABILITY)

    def test_result_cache_hit_on_repeat(self, executor):
        executor.probability(KEY)
        hits_before = executor.result_cache.hits
        executor.probability(KEY)
        assert executor.result_cache.hits == hits_before + 1

    def test_deterministic_methods_collapse_sampling_fields(self, executor):
        executor.probability(KEY, method="exact", samples=100, seed=1)
        hits_before = executor.result_cache.hits
        executor.probability(KEY, method="exact", samples=9999, seed=42)
        assert executor.result_cache.hits == hits_before + 1

    def test_stochastic_methods_do_not_collapse(self, executor):
        executor.probability(KEY, method="mc", samples=500, seed=1)
        misses_before = executor.result_cache.misses
        executor.probability(KEY, method="mc", samples=500, seed=2)
        assert executor.result_cache.misses == misses_before + 1

    def test_unknown_tuple_raises(self, executor):
        with pytest.raises(UnknownTupleError):
            executor.probability('know("Nobody","Here")')

    def test_seeded_batches_reproducible(self, system):
        values = []
        for _ in range(2):
            with QueryExecutor(system) as executor:
                values.append(executor.probability(
                    KEY, method="mc", samples=2000, seed=7))
        assert values[0] == values[1]


class TestPolynomialCache:
    def test_shared_across_query_kinds(self, executor):
        executor.probability(KEY)
        hits_before = executor.polynomial_cache.hits
        executor.execute(QuerySpec.explain(KEY))
        assert executor.polynomial_cache.hits > hits_before

    def test_hop_limits_are_distinct_entries(self, executor):
        executor.polynomial(KEY, hop_limit=1)
        executor.polynomial(KEY, hop_limit=2)
        assert len(executor.polynomial_cache) == 2

    def test_clear_caches(self, executor):
        executor.probability(KEY)
        executor.clear_caches()
        assert len(executor.polynomial_cache) == 0
        assert len(executor.result_cache) == 0


class TestRun:
    def test_input_order_preserved(self, executor):
        keys = [KEY, 'know("Steve","Elena")', 'know("Ben","Steve")']
        batch = executor.run([QuerySpec.probability(key) for key in keys])
        assert isinstance(batch, BatchResult)
        assert [outcome.spec.key for outcome in batch] == keys
        assert batch.ok
        assert batch.values()[0] == pytest.approx(KEY_PROBABILITY)

    def test_duplicates_deduplicated(self, executor):
        batch = executor.run([KEY, KEY, KEY])
        assert len(batch) == 3
        assert len(set(batch.values())) == 1
        assert executor.stats()["deduplicated"] == 2

    def test_accepts_strings_and_dicts(self, executor):
        batch = executor.run([
            KEY,
            {"kind": "probability", "key": 'know("Steve","Elena")'},
            QuerySpec.explain(KEY),
        ])
        assert batch.ok
        assert isinstance(batch[2].value, Explanation)

    def test_errors_captured_per_outcome(self, executor):
        batch = executor.run([KEY, 'know("Nobody","Here")'])
        assert not batch.ok
        assert batch[0].ok
        assert not batch[1].ok
        assert "UnknownTupleError" in batch[1].error
        assert isinstance(batch[1].exception, UnknownTupleError)
        assert batch.errors()[0][0].key == 'know("Nobody","Here")'
        assert executor.stats()["errors"] == 1

    def test_parallel_equals_sequential(self, system):
        keys = sorted(str(atom) for atom in system.derived_atoms("know"))
        specs = [QuerySpec.probability(key) for key in keys]
        with QueryExecutor(system, max_workers=4) as parallel_executor:
            parallel_values = parallel_executor.run(specs).values()
        with QueryExecutor(system, max_workers=1) as serial_executor:
            serial_values = serial_executor.run(
                specs, parallel=False).values()
        assert parallel_values == serial_values

    def test_cached_flag_on_second_run(self, executor):
        executor.run([QuerySpec.explain(KEY)])
        batch = executor.run([QuerySpec.explain(KEY)])
        assert batch[0].cached

    def test_mixed_kinds(self, executor):
        batch = executor.run([
            QuerySpec.probability(KEY),
            QuerySpec.explain(KEY),
            QuerySpec.derive(KEY, 0.05),
            QuerySpec.influence(KEY),
            QuerySpec.modify(KEY, 0.5),
        ])
        assert batch.ok
        values = batch.values()
        assert values[0] == pytest.approx(KEY_PROBABILITY)
        assert isinstance(values[1], Explanation)
        assert isinstance(values[2], SufficientProvenance)
        assert isinstance(values[3], InfluenceReport)
        assert isinstance(values[4], ModificationPlan)


class TestExecute:
    def test_explain_matches_facade(self, system, executor):
        explanation = executor.execute(QuerySpec.explain(KEY))
        assert explanation.probability == pytest.approx(KEY_PROBABILITY)
        assert explanation.to_dict() == system.explain(KEY).to_dict()

    def test_execute_raises(self, executor):
        with pytest.raises(UnknownTupleError):
            executor.execute('know("Nobody","Here")')

    def test_influence_filters(self, system, executor):
        report = executor.execute(QuerySpec.influence(
            KEY, kind_filter="tuple", relation="like"))
        assert report.scores
        for score in report.scores:
            assert score.literal.is_tuple
            assert score.literal.key.startswith("like(")


class TestStats:
    def test_stage_timings_and_counters(self, executor):
        executor.run([KEY, 'know("Steve","Elena")', QuerySpec.explain(KEY)])
        stats = executor.stats()
        assert stats["stages"]["extract"]["calls"] >= 2
        assert stats["stages"]["extract"]["seconds"] > 0
        assert stats["stages"]["infer"]["seconds"] > 0
        assert stats["queries"]["probability"] >= 2
        assert stats["queries"]["explain"] == 1
        assert stats["batches"] == 1
        assert stats["caches"]["polynomial"]["size"] >= 2

    def test_nonzero_cache_hits_reported(self, executor):
        executor.run([KEY, KEY])
        executor.run([KEY])
        stats = executor.stats()
        assert stats["caches"]["probability"]["hits"] > 0

    def test_stats_reset(self, executor):
        executor.probability(KEY)
        executor.stats_object.reset()
        assert executor.stats()["total_queries"] == 0


class TestFacadeIntegration:
    def test_shared_executor_reused(self, system):
        assert system.executor() is system.executor()

    def test_overrides_are_throwaway(self, system):
        first = system.executor()
        second = system.executor(max_workers=2)
        assert second is not first
        assert second.max_workers == 2
        # The shared executor (and its warm caches) must survive.
        assert system.executor() is first

    def test_override_does_not_evict_warm_caches(self, system):
        shared = system.executor()
        shared.probability(KEY)
        shared.probability(KEY)
        hits_before = shared.result_cache.stats()["hits"]
        assert hits_before > 0
        system.executor(max_workers=1)
        assert system.executor() is shared
        shared.probability(KEY)
        assert shared.result_cache.stats()["hits"] == hits_before + 1

    def test_configure_executor_replaces_shared(self, system):
        first = system.executor()
        rebuilt = system.configure_executor(max_workers=2)
        assert rebuilt is not first
        assert rebuilt.max_workers == 2
        assert system.executor() is rebuilt

    def test_config_defaults_respected(self):
        p3 = P3.from_source(
            ACQUAINTANCE,
            config=P3Config(executor_workers=3, polynomial_cache_size=7,
                            result_cache_size=11))
        p3.evaluate()
        executor = p3.executor()
        assert executor.max_workers == 3
        assert executor.polynomial_cache.maxsize == 7
        assert executor.result_cache.maxsize == 11

    def test_answer_queries_routes_through_executor(self):
        p3 = P3.from_source(ACQUAINTANCE + '\nquery(know("Ben","Elena")).')
        p3.evaluate()
        answers = p3.answer_queries()
        assert answers[KEY] == pytest.approx(KEY_PROBABILITY)
        assert p3.executor().stats()["queries"]["probability"] == 1
