"""Seeded generation of audit cases.

Three sources of cases, all deterministic in the sweep seed:

- **random polynomials** — monotone DNF with tunable width, monomial
  count, literal sharing, rule-literal rate, and extreme probabilities;
- **corpus fixtures** — hand-built adversarial structure that has bitten
  (or nearly bitten) real backends: absorption pairs, duplicated
  monomials, rule-only literals, the non-read-once P4 diamond, constants,
  and deterministic (p ∈ {0,1}) literals;
- **random programs** — small recursive trust-graph programs evaluated
  through the full pipeline at generation time, so program cases exercise
  parsing, evaluation, provenance capture, and extraction, not just
  polynomial arithmetic.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..provenance.polynomial import (
    Literal,
    Monomial,
    Polynomial,
    ProbabilityMap,
    rule_literal,
    tuple_literal,
)


class GeneratorConfig:
    """Knobs for random polynomial shape.

    The defaults keep every random case inside the brute-force oracle's
    literal budget, so each one is checked against true 2ⁿ enumeration.
    """

    __slots__ = ("max_literals", "max_monomials", "max_width",
                 "shared_bias", "rule_literal_rate",
                 "extreme_probability_rate", "program_rate")

    def __init__(self,
                 max_literals: int = 8,
                 max_monomials: int = 6,
                 max_width: int = 4,
                 shared_bias: float = 0.6,
                 rule_literal_rate: float = 0.25,
                 extreme_probability_rate: float = 0.15,
                 program_rate: float = 0.2) -> None:
        self.max_literals = max_literals
        self.max_monomials = max_monomials
        self.max_width = max_width
        self.shared_bias = shared_bias
        self.rule_literal_rate = rule_literal_rate
        self.extreme_probability_rate = extreme_probability_rate
        self.program_rate = program_rate


class AuditCase:
    """One differential-testing input: a polynomial plus its context.

    ``origin`` records where the case came from (``"random"``,
    ``"corpus"``, ``"program"``, or ``"shrunk"``).  Program cases carry
    the program source and queried tuple so the oracle can re-run the
    whole facade/executor pipeline; polynomial cases carry only the
    polynomial and its probability map.
    """

    __slots__ = ("name", "polynomial", "probabilities", "origin",
                 "program_source", "query_key", "hop_limit")

    def __init__(self, name: str, polynomial: Polynomial,
                 probabilities: ProbabilityMap,
                 origin: str = "random",
                 program_source: Optional[str] = None,
                 query_key: Optional[str] = None,
                 hop_limit: Optional[int] = None) -> None:
        self.name = name
        self.polynomial = polynomial
        self.probabilities = dict(probabilities)
        self.origin = origin
        self.program_source = program_source
        self.query_key = query_key
        self.hop_limit = hop_limit

    @property
    def is_program_case(self) -> bool:
        return self.program_source is not None and self.query_key is not None

    def to_dict(self) -> dict:
        from ..io.serialize import literal_to_json, polynomial_to_json
        document: Dict[str, object] = {
            "name": self.name,
            "origin": self.origin,
            "polynomial": polynomial_to_json(self.polynomial),
            "probabilities": [
                dict(literal_to_json(literal), probability=value)
                for literal, value in sorted(
                    self.probabilities.items(),
                    key=lambda item: (item[0].kind, item[0].key))
            ],
        }
        if self.program_source is not None:
            document["program"] = self.program_source
        if self.query_key is not None:
            document["query"] = self.query_key
        if self.hop_limit is not None:
            document["hop_limit"] = self.hop_limit
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "AuditCase":
        from ..io.serialize import literal_from_json, polynomial_from_json
        probabilities = {
            literal_from_json(entry): entry["probability"]
            for entry in document["probabilities"]
        }
        return cls(
            document["name"],
            polynomial_from_json(document["polynomial"]),
            probabilities,
            origin=document.get("origin", "random"),
            program_source=document.get("program"),
            query_key=document.get("query"),
            hop_limit=document.get("hop_limit"),
        )

    def __repr__(self) -> str:
        return "AuditCase(%r, %s, %d monomials / %d literals)" % (
            self.name, self.origin, len(self.polynomial),
            len(self.polynomial.literals()))


# -- random polynomials ----------------------------------------------------------

def _random_probability(rng: random.Random, config: GeneratorConfig) -> float:
    if rng.random() < config.extreme_probability_rate:
        return rng.choice([0.0, 1.0, 0.01, 0.99])
    return round(rng.uniform(0.05, 0.95), 4)


def random_polynomial(rng: random.Random,
                      config: Optional[GeneratorConfig] = None) -> Polynomial:
    """One random monotone DNF over a small shared literal pool.

    ``shared_bias`` controls how often a monomial reuses a literal another
    monomial already holds (shared literals are what separate the exact
    methods from naive independent-product shortcuts); ``rule_literal_rate``
    mixes rule literals in among the tuple literals.
    """
    config = config or GeneratorConfig()
    pool: List[Literal] = []
    for index in range(config.max_literals):
        if rng.random() < config.rule_literal_rate:
            pool.append(rule_literal("r%d" % (index + 1)))
        else:
            pool.append(tuple_literal('t("x%d")' % (index + 1)))
    monomial_count = rng.randint(1, config.max_monomials)
    monomials: List[Monomial] = []
    used: List[Literal] = []
    for _ in range(monomial_count):
        width = rng.randint(1, config.max_width)
        chosen: List[Literal] = []
        for _ in range(width):
            if used and rng.random() < config.shared_bias:
                literal = rng.choice(used)
            else:
                literal = rng.choice(pool)
            if literal not in chosen:
                chosen.append(literal)
        monomials.append(Monomial(chosen))
        for literal in chosen:
            if literal not in used:
                used.append(literal)
    return Polynomial.from_monomials(monomials)


def random_case(rng: random.Random, index: int,
                config: Optional[GeneratorConfig] = None) -> AuditCase:
    """One random polynomial case with random literal probabilities."""
    config = config or GeneratorConfig()
    polynomial = random_polynomial(rng, config)
    probabilities = {
        literal: _random_probability(rng, config)
        for literal in sorted(polynomial.literals())
    }
    return AuditCase("random-%04d" % index, polynomial, probabilities,
                     origin="random")


# -- the adversarial corpus ------------------------------------------------------

def _case(name: str, groups: Sequence[Sequence[str]],
          probabilities: Dict[str, float]) -> AuditCase:
    """Corpus shorthand: names starting with ``r`` become rule literals."""
    def lit(token: str) -> Literal:
        if token.startswith("r"):
            return rule_literal(token)
        return tuple_literal('t("%s")' % token)

    polynomial = Polynomial.from_monomials(
        Monomial(lit(token) for token in group) for group in groups)
    return AuditCase(
        "corpus-" + name, polynomial,
        {lit(token): value for token, value in probabilities.items()},
        origin="corpus")


def corpus_cases() -> List[AuditCase]:
    """Hand-built adversarial fixtures seeding every audit sweep.

    Each targets a structure class with a history of breaking inference
    shortcuts; the cross-representation agreement tests in
    ``tests/audit/test_corpus.py`` reuse these same fixtures.
    """
    cases = [
        # Absorption: ab + a collapses to a; backends must agree on the
        # absorbed form (the unabsorbed comparison lives in the tests,
        # where raw DNF can be evaluated without Polynomial's canonicity).
        _case("absorption", [["a"], ["a", "b"], ["b", "c"]],
              {"a": 0.3, "b": 0.7, "c": 0.5}),
        # Duplicated monomials (set semantics must deduplicate).
        _case("duplicates", [["a", "b"], ["b", "a"], ["c"]],
              {"a": 0.4, "b": 0.6, "c": 0.2}),
        # Rule-only literals: no tuple literals anywhere.
        _case("rule-only", [["r1", "r2"], ["r2", "r3"]],
              {"r1": 0.8, "r2": 0.4, "r3": 0.2}),
        # P4 diamond ab + bc + cd: the canonical non-read-once shape
        # (read-once backend must refuse; everyone else must agree).
        _case("p4-diamond", [["a", "b"], ["b", "c"], ["c", "d"]],
              {"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5}),
        # Deterministic literals: p ∈ {0, 1} exercises short-circuits.
        _case("deterministic-mix", [["a", "b"], ["c"]],
              {"a": 1.0, "b": 0.35, "c": 0.0}),
        # Certain truth through p=1 literals only.
        _case("certain", [["a"], ["b"]], {"a": 1.0, "b": 0.5}),
        # Impossible: every monomial contains a p=0 literal.
        _case("impossible", [["a", "b"], ["a", "c"]],
              {"a": 0.0, "b": 0.9, "c": 0.9}),
        # Disjoint singletons with large union weight: the Karp–Luby
        # regime where the historical clamp bias was worst.
        _case("karp-luby-heavy",
              [["m%d" % i] for i in range(8)],
              {"m%d" % i: 0.9 for i in range(8)}),
        # One wide monomial (joint-product path, no union logic at all).
        _case("single-wide", [["a", "b", "c", "d", "e", "f"]],
              {token: 0.8 for token in "abcdef"}),
        # Shared hub literal: every monomial funnels through b.
        _case("shared-hub", [["a", "b"], ["b", "c"], ["b", "d"]],
              {"a": 0.6, "b": 0.3, "c": 0.6, "d": 0.6}),
    ]
    # Constants: empty DNF (false) and the empty-monomial DNF (true).
    cases.append(AuditCase("corpus-zero", Polynomial.zero(), {},
                           origin="corpus"))
    cases.append(AuditCase("corpus-one", Polynomial.one(), {},
                           origin="corpus"))
    cases.extend(program_corpus_cases())
    return cases


# -- program cases --------------------------------------------------------------

#: Rule block shared by the generated trust-graph programs (recursive,
#: with a guard so cyclic trust networks still terminate).
_TRUST_RULES = (
    'r1 0.9: trustPath(P1,P2) :- trust(P1,P2).\n'
    'r2 0.8: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1!=P3.\n'
)

_NODE_NAMES = ("Ann", "Bob", "Cat", "Dan", "Eve", "Fay")


def _trust_program(edges: Sequence[Tuple[str, str, float]]) -> str:
    lines = [_TRUST_RULES]
    for index, (src, dst, prob) in enumerate(edges):
        lines.append('t%d %.2f: trust("%s","%s").' % (index + 1, prob,
                                                      src, dst))
    return "\n".join(lines)


def _program_case(name: str, source: str, query_key: str,
                  hop_limit: Optional[int] = None) -> Optional[AuditCase]:
    """Evaluate a program and package one derived tuple as a case.

    Returns ``None`` when the requested tuple is not derivable (a random
    edge set may not connect the endpoints) — callers re-roll.
    """
    from ..core.system import P3
    p3 = P3.from_source(source)
    p3.evaluate()
    if query_key not in p3.graph:
        return None
    polynomial = p3.polynomial_of(query_key, hop_limit=hop_limit)
    if polynomial.is_zero:
        return None
    probabilities = {
        literal: p3.probabilities[literal]
        for literal in polynomial.literals()
    }
    return AuditCase(name, polynomial, probabilities, origin="program",
                     program_source=source, query_key=query_key,
                     hop_limit=hop_limit)


def random_program_case(rng: random.Random, index: int) -> AuditCase:
    """One random recursive trust-graph program case.

    Samples a small digraph (possibly cyclic — back edges are kept), runs
    it through the full pipeline, and queries a random reachable pair.
    Re-rolls until the sampled graph actually derives something.
    """
    while True:
        node_count = rng.randint(3, 5)
        nodes = _NODE_NAMES[:node_count]
        pairs = [(a, b) for a in nodes for b in nodes if a != b]
        rng.shuffle(pairs)
        edge_count = rng.randint(node_count - 1, min(len(pairs),
                                                     node_count + 2))
        edges = [(src, dst, round(rng.uniform(0.2, 0.95), 2))
                 for src, dst in pairs[:edge_count]]
        source = _trust_program(edges)
        src, dst = rng.choice(pairs)
        key = 'trustPath("%s","%s")' % (src, dst)
        case = _program_case("program-%04d" % index, source, key)
        if case is not None and len(case.polynomial.literals()) <= 18:
            return case


def program_corpus_cases() -> List[AuditCase]:
    """Fixed program fixtures: a trust cycle and a diamond.

    The cycle fixture makes every sweep exercise cycle elimination (λ⁰
    extraction on a strongly connected trust graph); the diamond fixture
    pins down shared sub-derivations.
    """
    cycle = _trust_program([("Ann", "Bob", 0.8), ("Bob", "Cat", 0.7),
                            ("Cat", "Ann", 0.6), ("Ann", "Cat", 0.5)])
    diamond = _trust_program([("Ann", "Bob", 0.8), ("Ann", "Cat", 0.7),
                              ("Bob", "Dan", 0.6), ("Cat", "Dan", 0.5)])
    cases = []
    for name, source, key in (
            ("corpus-cycle", cycle, 'trustPath("Ann","Cat")'),
            ("corpus-diamond", diamond, 'trustPath("Ann","Dan")')):
        case = _program_case(name, source, key)
        if case is not None:  # pragma: no branch - fixtures always derive
            case.origin = "corpus"
            cases.append(case)
    return cases


# -- sweep assembly --------------------------------------------------------------

def generate_cases(count: int, seed: int,
                   include_corpus: bool = True,
                   include_programs: bool = True,
                   config: Optional[GeneratorConfig] = None
                   ) -> List[AuditCase]:
    """The deterministic case list for one sweep.

    The corpus (when included) always runs in full and counts toward
    ``count``; the remainder is split between random program cases (a
    ``program_rate`` fraction) and random polynomials.  The same
    ``(count, seed)`` always yields byte-identical cases.
    """
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    cases: List[AuditCase] = []
    if include_corpus:
        cases.extend(corpus_cases()[:count])
    remaining = count - len(cases)
    program_count = (int(remaining * config.program_rate)
                     if include_programs else 0)
    for index in range(program_count):
        cases.append(random_program_case(rng, index))
    for index in range(remaining - program_count):
        cases.append(random_case(rng, index, config))
    return cases


def iter_case_names(cases: Sequence[AuditCase]) -> Iterator[str]:
    for case in cases:
        yield case.name
