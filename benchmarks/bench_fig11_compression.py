"""Figure 11 — compression ratio of sufficient provenance vs error limit.

The paper queries mutual trust paths on 150-node/150-edge samples (hop
limit 6) and varies the approximation error from 0.1% to 10% of P[λ]: 0.1%
already halves the provenance, 10% removes ~99.8% of the monomials.

The error grid is relative to P[λ], exactly as the paper defines it ("X%
means X percent of P[λ]").  The probability P[λ] is estimated with the
vectorized Monte-Carlo backend, as in the paper's prototype.
"""

from repro.inference.parallel_mc import parallel_probability
from repro.queries.derivation import derivation_query

from reporting import record_table
from workloads import epsilon_grid, query_workload


def test_fig11_compression_ratio(benchmark):
    p3, key, poly = query_workload()
    probability = parallel_probability(
        poly, p3.probabilities, samples=20000, seed=1).value

    rows = []
    ratios = []
    for fraction in epsilon_grid():
        epsilon = fraction * probability
        result = derivation_query(
            poly, p3.probabilities, epsilon, method="naive-mc")
        ratios.append(result.compression_ratio)
        rows.append([
            "%.1f%%" % (100 * fraction),
            len(result.original),
            len(result.sufficient),
            result.compression_ratio,
        ])

    record_table(
        "fig11_compression",
        "Figure 11: sufficient-provenance compression on %s "
        "(%d monomials, P=%.4f)" % (key, len(poly), probability),
        ["approx. error (% of P)", "dnf size", "sufficient size",
         "compression ratio"],
        rows,
    )

    # Shape: ratio decreases monotonically and ends far below the start.
    assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < 0.2
    assert ratios[0] <= 1.0

    benchmark.pedantic(
        derivation_query, args=(poly, p3.probabilities,
                                0.02 * probability),
        kwargs={"method": "union-bound"}, rounds=3, iterations=1)
