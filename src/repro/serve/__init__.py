"""Long-lived multi-tenant HTTP service over the provenance executor.

Start from the CLI (``p3 serve program.pl``) or embed::

    from repro.serve import ProvenanceService, TenantRegistry, start_in_background

    registry = TenantRegistry()
    registry.create("default", path="examples/acquaintance.pl")
    with start_in_background(ProvenanceService(registry)) as handle:
        ...  # POST http://127.0.0.1:<handle.port>/tenants/default/query
    registry.close()

See ``docs/SERVICE.md`` for the route and envelope reference.
"""

from .admission import AdmissionController, AdmissionError
from .app import ProvenanceService, ServiceHandle, start_in_background
from .envelopes import (
    batch_envelope,
    error_envelope,
    health_envelope,
    tenant_envelope,
    tenants_envelope,
    update_envelope,
)
from .tenants import (
    Tenant,
    TenantExistsError,
    TenantLimitError,
    TenantRegistry,
    UnknownTenantError,
    default_tenant_config,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "ProvenanceService",
    "ServiceHandle",
    "Tenant",
    "TenantExistsError",
    "TenantLimitError",
    "TenantRegistry",
    "UnknownTenantError",
    "batch_envelope",
    "default_tenant_config",
    "error_envelope",
    "health_envelope",
    "start_in_background",
    "tenant_envelope",
    "tenants_envelope",
    "update_envelope",
]
