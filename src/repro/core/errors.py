"""Exception hierarchy for the P3 system facade.

Lower layers raise their own specific exceptions (``ParseError``,
``EvaluationError``, ``ExtractionError``, ...); the facade wraps user-level
mistakes in :class:`P3Error` subclasses so applications can catch one base
type.

Inference failure taxonomy
--------------------------

The resilience layer (:mod:`repro.resilience`) needs to decide, per
exception, whether retrying the same backend can help, whether falling
through to the next rung of a backend ladder can help, or whether the
query itself is malformed.  That decision is encoded as a class hierarchy
rather than per-site string matching:

- :class:`TransientInferenceError` — the failure is environmental (a
  flaky worker, an injected fault, a resource that may come back).
  Retrying the *same* backend with backoff is sensible.
- :class:`PermanentInferenceError` — the backend deterministically cannot
  answer this input (unsupported structure, invalid parameters).
  Retrying is useless; falling through to a different backend may help.
- :class:`BudgetExceededError` — a configured resource budget (monomial
  count, monomial width, extraction node visits, compiled-polynomial
  memory) was hit.  Permanent for the backend that hit it, but carries
  ``partial`` progress so callers can degrade instead of discarding work.

Historical exception types (``ExactLimitError``,
``ExtractionError``, argument-validation ``ValueError`` raises in the
samplers) are kept as subclasses of the taxonomy *and* of their original
builtin bases, so existing ``except RuntimeError`` / ``except ValueError``
call sites keep working.
"""

from __future__ import annotations

from typing import Optional


class P3Error(Exception):
    """Base class for errors raised by the P3 facade."""


class NotEvaluatedError(P3Error):
    """A query was issued before :meth:`P3.evaluate` ran."""


class UnknownTupleError(P3Error, KeyError):
    """The queried tuple is not derivable (absent from the provenance graph)."""

    def __init__(self, tuple_key: str) -> None:
        super().__init__(
            "Tuple %r was not derived by the program; "
            "check the relation name and argument constants" % tuple_key)
        self.tuple_key = tuple_key


class UnknownLiteralError(P3Error, KeyError):
    """A literal was referenced that does not occur in the provenance."""

    def __init__(self, key: str) -> None:
        super().__init__("Literal %r does not appear in the provenance" % key)
        self.key = key


class QueryTimeoutError(P3Error, TimeoutError):
    """A query exceeded its per-query deadline.

    Raised inside the batch executor when a spec's ``timeout`` (or the
    config's ``query_timeout``) elapses; in a batch it is captured as that
    outcome's error instead of propagating.
    """

    def __init__(self, key: str, timeout: float) -> None:
        super().__init__(
            "Query %r exceeded its deadline of %.3fs" % (key, timeout))
        self.key = key
        self.timeout = timeout


class PoolHangError(P3Error, TimeoutError):
    """The executor's worker pool stopped making progress.

    Raised (as per-outcome errors, never out of a batch) when no worker
    future completes within ``pool_hang_seconds`` and the rebuild quota
    is already spent.  Sequential execution is *not* attempted for hung
    pools — whatever wedged the workers would wedge the caller's thread
    too.
    """

    def __init__(self, key: str, hang_seconds: float) -> None:
        super().__init__(
            "Query %r abandoned: worker pool made no progress for %.3fs "
            "and the rebuild quota was exhausted" % (key, hang_seconds))
        self.key = key
        self.hang_seconds = hang_seconds


# -- inference failure taxonomy -------------------------------------------------

class InferenceError(P3Error):
    """Base class for failures inside a probability backend."""


class TransientInferenceError(InferenceError):
    """A backend failure that a retry (same backend, same input) may fix.

    Raised for environmental conditions — flaky workers, injected chaos
    faults, temporarily unavailable resources.  The resilience layer's
    retry policies retry exactly this class (and ``OSError``); everything
    else falls through to the next ladder rung immediately.
    """


class PermanentInferenceError(InferenceError):
    """A backend failure no retry can fix (for this backend and input).

    A different backend may still succeed, so fallback ladders treat this
    as "skip to the next rung".
    """


class InferenceConfigurationError(PermanentInferenceError, ValueError):
    """Invalid parameters for an inference call (``samples <= 0``, ...).

    Subclasses ``ValueError`` so historical ``except ValueError`` call
    sites (and tests) keep catching argument mistakes.
    """


class BudgetExceededError(PermanentInferenceError, RuntimeError):
    """A configured resource budget was exhausted mid-computation.

    Parameters
    ----------
    message:
        Human-readable description of what blew up.
    resource:
        Which budget was hit: ``"monomials"``, ``"monomial_width"``,
        ``"node_visits"``, ``"compiled_bytes"``, ``"assignments"``, ...
    limit / used:
        The configured cap and the amount consumed when it tripped.
    partial:
        Whatever partial progress the computation can hand back (for
        extraction, the last consistent intermediate polynomial) so
        callers can degrade gracefully instead of discarding work.

    Subclasses ``RuntimeError`` because the historical budget errors
    (``ExtractionError``, ``ExactLimitError``) did, and callers catch
    them as such.
    """

    def __init__(self, message: str,
                 resource: Optional[str] = None,
                 limit: Optional[float] = None,
                 used: Optional[float] = None,
                 partial: Optional[object] = None) -> None:
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.used = used
        self.partial = partial

    def to_dict(self) -> dict:
        document = {"message": str(self), "resource": self.resource}
        if self.limit is not None:
            document["limit"] = self.limit
        if self.used is not None:
            document["used"] = self.used
        document["has_partial"] = self.partial is not None
        return document


class DepthLimitError(P3Error, RecursionError):
    """A recursive walk (parsing or provenance extraction) went too deep.

    Pathologically deep programs and derivation chains used to surface as
    a bare ``RecursionError`` — an interpreter-level crash that a service
    worker cannot distinguish from a bug.  This typed, budget-style error
    carries *where* the walk blew up (``phase``) and the depth bound that
    was in force, so the query fails with a structured envelope and the
    process keeps serving.

    Subclasses ``RecursionError`` so historical ``except RecursionError``
    call sites keep catching it.
    """

    def __init__(self, phase: str, limit: int,
                 detail: Optional[str] = None) -> None:
        message = ("%s exceeded the recursion depth limit (%d)"
                   % (phase, limit))
        if detail:
            message = "%s: %s" % (message, detail)
        super().__init__(message)
        self.phase = phase
        self.limit = limit

    def to_dict(self) -> dict:
        return {"message": str(self), "phase": self.phase,
                "resource": "recursion_depth", "limit": self.limit}


# -- process-isolation worker failures ------------------------------------------

class WorkerCrashError(TransientInferenceError):
    """A process-isolation worker died mid-request (segfault, OOM kill,
    external SIGKILL).

    Transient by design: the crash took the *worker* down, not the
    service — the pool respawns a replacement, and retrying the same
    backend on a fresh worker is sensible (an externally killed worker
    says nothing about the input).  Carries how the worker died so
    outcomes and chaos reports can distinguish signal deaths from plain
    exits.
    """

    def __init__(self, backend: str, exitcode: Optional[int] = None,
                 detail: str = "") -> None:
        how = "exit code %r" % (exitcode,)
        if exitcode is not None and exitcode < 0:
            how = "signal %d" % (-exitcode,)
        message = ("Inference worker running backend %r died (%s)"
                   % (backend, how))
        if detail:
            message = "%s: %s" % (message, detail)
        super().__init__(message)
        self.backend = backend
        self.exitcode = exitcode

    def to_dict(self) -> dict:
        document = {"message": str(self), "backend": self.backend,
                    "exitcode": self.exitcode}
        if self.exitcode is not None and self.exitcode < 0:
            document["signal"] = -self.exitcode
        return document


class WorkerMemoryError(PermanentInferenceError, MemoryError):
    """A process-isolation worker hit its ``RLIMIT_AS`` memory cap.

    Permanent for the backend that hit it — the same input would blow the
    same cap again — so fallback ladders skip to the next rung instead of
    retrying.  Subclasses ``MemoryError`` so the ladder's absorbed-class
    list and historical handlers keep catching it.
    """

    def __init__(self, backend: str, limit_bytes: Optional[int] = None,
                 detail: str = "") -> None:
        message = "Inference worker running backend %r exhausted " \
                  "its memory cap" % backend
        if limit_bytes is not None:
            message = "%s (%d bytes)" % (message, limit_bytes)
        if detail:
            message = "%s: %s" % (message, detail)
        super().__init__(message)
        self.backend = backend
        self.limit_bytes = limit_bytes

    def to_dict(self) -> dict:
        return {"message": str(self), "backend": self.backend,
                "resource": "worker_memory", "limit": self.limit_bytes}


class WorkerTimeoutError(InferenceError, TimeoutError):
    """A process-isolation worker exceeded its deadline and was killed.

    Unlike a thread-pool timeout — which merely *abandons* the wedged
    thread — the worker process was SIGKILLed, so the CPU and memory it
    held are actually reclaimed.  A ``TimeoutError``, so retry policies
    skip it and ladders fall through to the next rung.
    """

    def __init__(self, backend: str, timeout: float) -> None:
        super().__init__(
            "Inference worker running backend %r exceeded its deadline "
            "of %.3fs and was killed" % (backend, timeout))
        self.backend = backend
        self.timeout = timeout

    def to_dict(self) -> dict:
        return {"message": str(self), "backend": self.backend,
                "timeout": self.timeout}


#: Exception classes worth retrying on the same backend.
TRANSIENT_CLASSES = (TransientInferenceError, OSError)


def is_transient(error: BaseException) -> bool:
    """Can retrying the same backend plausibly fix ``error``?

    Budget hits and other permanent errors answer False even though
    ``BudgetExceededError`` passes an ``isinstance`` check against
    ``OSError``-unrelated bases; timeouts answer False too — the time is
    better spent on a cheaper rung.
    """
    if isinstance(error, (PermanentInferenceError, TimeoutError)):
        return False
    return isinstance(error, TRANSIENT_CLASSES)
