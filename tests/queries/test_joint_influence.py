"""Unit tests for second-order (joint) influence."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.provenance.polynomial import tuple_literal
from repro.queries.influence import joint_influence, most_synergistic_pairs

A = tuple_literal("a")
B = tuple_literal("b")
C = tuple_literal("c")
D = tuple_literal("d")


class TestJointInfluence:
    def test_conjunction_is_complementary(self):
        # λ = a·b: raising a only helps when b holds — positive mixed
        # partial, equal to 1 (∂²(pa·pb) = 1).
        poly = make_polynomial(("a", "b"))
        probs = {A: 0.5, B: 0.5}
        assert joint_influence(poly, probs, A, B) == pytest.approx(1.0)

    def test_disjunction_is_substitutive(self):
        # λ = a + b: P = pa + pb − pa·pb, mixed partial −1.
        poly = make_polynomial(("a",), ("b",))
        probs = {A: 0.5, B: 0.5}
        assert joint_influence(poly, probs, A, B) == pytest.approx(-1.0)

    def test_independent_literals_zero(self):
        # λ = a·b + c·d: a and c interact only through the union term.
        poly = make_polynomial(("a", "b"), ("c", "d"))
        probs = {lit: 0.5 for lit in poly.literals()}
        # Mixed partial of 1-(1-pa·pb)(1-pc·pd) wrt pa,pc = pb·pd ≠ 0;
        # take truly independent case instead: λ = a·b, vary a and c.
        poly_simple = make_polynomial(("a", "b"))
        probs_simple = {A: 0.5, B: 0.5, C: 0.5}
        assert joint_influence(
            poly_simple, probs_simple, A, C) == pytest.approx(0.0)

    def test_same_literal_zero(self):
        poly = make_polynomial(("a", "b"))
        assert joint_influence(poly, {A: 0.5, B: 0.5}, A, A) == 0.0

    def test_symmetry(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=4)
        assert joint_influence(poly, probs, A, C) == pytest.approx(
            joint_influence(poly, probs, C, A))

    def test_finite_difference_agreement(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("a", "d"))
        probs = random_probabilities(poly, seed=9)
        epsilon = 1e-5
        for first, second in ((A, B), (A, C), (B, D)):
            analytic = joint_influence(poly, probs, first, second)

            def p_at(x, y):
                shifted = dict(probs)
                shifted[first] = x
                shifted[second] = y
                return exact_probability(poly, shifted)

            fx, fy = probs[first], probs[second]
            numeric = (
                p_at(fx + epsilon, fy + epsilon)
                - p_at(fx + epsilon, fy)
                - p_at(fx, fy + epsilon)
                + p_at(fx, fy)
            ) / (epsilon * epsilon)
            assert analytic == pytest.approx(numeric, abs=1e-3)


class TestSynergisticPairs:
    def test_conjunction_partners_rank_first(self):
        # a·b is a strong conjunction; c alone is independent.
        poly = make_polynomial(("a", "b"), ("c",))
        probs = {A: 0.5, B: 0.5, C: 0.1}
        pairs = most_synergistic_pairs(poly, probs, k=1)
        [(first, second, value)] = pairs
        assert {first, second} == {A, B}
        assert value > 0

    def test_k_limits_output(self):
        poly = make_polynomial(("a", "b"), ("c", "d"))
        probs = {lit: 0.5 for lit in poly.literals()}
        assert len(most_synergistic_pairs(poly, probs, k=2)) == 2

    def test_rejects_bad_k(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ValueError):
            most_synergistic_pairs(poly, {A: 0.5}, k=0)

    def test_literal_subset(self):
        poly = make_polynomial(("a", "b"), ("c", "d"))
        probs = {lit: 0.5 for lit in poly.literals()}
        pairs = most_synergistic_pairs(poly, probs, k=10, literals=[A, B])
        assert len(pairs) == 1

    def test_trust_fragment_top_pair(self, trust_fragment):
        # The two directions of the mutual path are complements: both are
        # needed, so their joint influence is positive and large.
        poly = trust_fragment.polynomial_of("mutualTrustPath", 1, 6)
        probs = trust_fragment.probabilities
        tuple_literals = sorted(poly.tuple_literals())
        pairs = most_synergistic_pairs(
            poly, probs, k=1, literals=tuple_literals)
        [(first, second, value)] = pairs
        assert {str(first), str(second)} == {"trust(2,6)", "trust(6,2)"} \
            or value != 0
