"""CLI failure behaviour: nonzero exits and the JSON error envelope."""

import json

import pytest

from repro.cli import main
from repro.data import ACQUAINTANCE


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "acquaintance.pl"
    path.write_text(ACQUAINTANCE)
    return str(path)


class TestExitCodes:
    def test_missing_program_file(self, capsys):
        assert main(["run", "/no/such/file.pl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_tuple(self, program_file, capsys):
        assert main(["explain", program_file, 'know("No","One")']) == 2
        err = capsys.readouterr().err
        assert "p3: error:" in err

    def test_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.pl"
        bad.write_text("this is not problog ::: at all.\n")
        assert main(["run", str(bad)]) == 2

    def test_success_still_exits_zero(self, program_file):
        assert main(["run", program_file, "--relation", "know"]) == 0


class TestJsonErrorEnvelope:
    def test_envelope_on_stdout_message_on_stderr(self, program_file,
                                                  capsys):
        code = main(["explain", program_file, 'know("No","One")', "--json"])
        assert code == 2
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["version"] == 2
        assert document["kind"] == "error"
        assert document["error"]["type"] == "UnknownTupleError"
        assert 'know("No","One")' in document["error"]["message"]
        # The repr-quoting of KeyError must not leak into the message.
        assert not document["error"]["message"].startswith("'")
        assert "p3: error:" in captured.err

    def test_no_envelope_without_json_flag(self, program_file, capsys):
        code = main(["explain", program_file, 'know("No","One")'])
        assert code == 2
        assert capsys.readouterr().out == ""

    def test_query_batch_with_bad_key_exits_nonzero(self, program_file,
                                                    capsys):
        code = main(["query", program_file, 'know("No","One")', "--json"])
        captured = capsys.readouterr()
        assert code == 1  # per-outcome error, reported in the batch doc
        document = json.loads(captured.out)
        assert document["results"]['know("No","One")'] is None

    def test_budget_error_detail_rides_along(self, capsys):
        # A budget hit escaping a direct (non-batch) query path carries
        # its structured detail into the envelope.
        from repro.core.errors import BudgetExceededError
        from repro.io.serialize import error_to_json
        document = error_to_json(BudgetExceededError(
            "blew the monomial budget", resource="monomials",
            limit=10, used=11))
        assert document["error"]["type"] == "BudgetExceededError"
        assert document["error"]["resource"] == "monomials"
        assert document["error"]["limit"] == 10
        assert document["error"]["used"] == 11
        assert document["error"]["has_partial"] is False


class TestResilientFlag:
    def test_resilient_query_answers(self, program_file, capsys):
        code = main(["query", program_file, 'know("Ben","Elena")',
                     "--resilient"])
        assert code == 0
        assert "0.163840" in capsys.readouterr().out

    def test_chaos_smoke(self, capsys):
        # Tiny chaos run through the CLI: seeded, JSON, exit 0 on ok.
        code = main(["chaos", "--seed", "0", "--specs", "12",
                     "--people", "8", "--samples", "4000",
                     "--pool-hang", "0.3", "--json"])
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["kind"] == "chaos_report"
        assert code == (0 if document["ok"] else 1)
        assert document["well_formed"] == document["specs"]
