"""Unit tests for the bundled paper programs."""

from repro.data.programs import (
    acquaintance_program,
    trust_rules_program,
    vqa_rules_program,
)


class TestAcquaintance:
    def test_figure2_shape(self):
        program = acquaintance_program()
        assert len(program.facts) == 6
        assert len(program.rules) == 3

    def test_labels_match_paper(self):
        program = acquaintance_program()
        assert {f.label for f in program.facts} == {
            "t1", "t2", "t3", "t4", "t5", "t6"}
        assert {r.label for r in program.rules} == {"r1", "r2", "r3"}

    def test_probabilities_match_paper(self):
        probs = acquaintance_program().probabilities()
        assert probs["r1"] == 0.8
        assert probs["r2"] == 0.4
        assert probs["r3"] == 0.2
        assert probs["t4"] == 0.4
        assert probs["t5"] == 0.6

    def test_recursive_rule(self):
        program = acquaintance_program()
        assert program.rule_by_label("r3").is_recursive


class TestTrustRules:
    def test_figure7_shape(self):
        program = trust_rules_program()
        assert len(program.rules) == 3
        assert len(program.facts) == 0

    def test_rule_probabilities(self):
        probs = trust_rules_program().probabilities()
        assert probs == {"r1": 1.0, "r2": 1.0, "r3": 0.8}


class TestVQARules:
    def test_figure5_shape(self):
        program = vqa_rules_program()
        assert len(program.rules) == 4
        heads = {r.head.relation for r in program.rules}
        assert heads == {"hasImgAns", "candidate", "ans"}
