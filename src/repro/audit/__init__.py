"""Differential audit harness: randomized oracle testing of inference.

Every inference backend, every provenance representation, and every query
path in this repo is supposed to agree on P[λ] — exactly for the exact
backends, within statistically sound tolerance bands for the sampling
estimators.  This package turns that promise into an executable check:

- :mod:`repro.audit.generator` — seeded random provenance polynomials and
  small recursive programs, plus a hand-built adversarial corpus
  (absorption pairs, non-read-once diamonds, rule-only literals, cycles);
- :mod:`repro.audit.oracle` — runs every registered backend (and, for
  program cases, every query type through both the :class:`~repro.core.P3`
  facade and the batched executor) against a trusted reference and
  records disagreements;
- :mod:`repro.audit.shrink` — reduces a disagreeing case to a minimal
  reproducer by greedily dropping monomials, literals, and probability
  detail while the disagreement persists;
- :mod:`repro.audit.runner` — the sweep driver behind ``p3 audit``:
  generate, check, shrink, and serialize failures to replay files;
- :mod:`repro.audit.faults` — deliberate bug injection (e.g. the
  historical Karp–Luby clamp) used to prove the harness actually catches
  the class of defects it exists for.
"""

from .generator import (
    AuditCase,
    GeneratorConfig,
    corpus_cases,
    generate_cases,
    random_polynomial,
)
from .oracle import (
    CaseVerdict,
    Disagreement,
    audit_case,
    audit_polynomial_case,
    audit_program_case,
)
from .runner import (
    AuditReport,
    load_replay,
    run_audit,
    run_replay,
    write_replay,
)
from .shrink import shrink_case
from .faults import FAULT_NAMES, inject_fault

__all__ = [
    "AuditCase",
    "AuditReport",
    "CaseVerdict",
    "Disagreement",
    "FAULT_NAMES",
    "GeneratorConfig",
    "audit_case",
    "audit_polynomial_case",
    "audit_program_case",
    "corpus_cases",
    "generate_cases",
    "inject_fault",
    "load_replay",
    "random_polynomial",
    "run_audit",
    "run_replay",
    "shrink_case",
    "write_replay",
]
