"""Influence Query (Section 4.3): most influential literals.

Implements Definition 4.1 (Kanagal et al. [13]): the influence of literal
``x`` on polynomial λ is the partial derivative of the arithmetization,

    Inf_x(λ) = P[λ | x=1] − P[λ | x=0].

For monotone DNFs the influence is always in [0, 1].  Backends:

- ``exact``: two Shannon-expansion evaluations on the cofactors;
- ``mc``: sequential Monte-Carlo with common random numbers (the same
  sampled assignment is evaluated under both conditionings, which cancels
  most sampling noise out of the difference);
- ``parallel``: the numpy vectorized version of the same scheme.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..inference.exact import exact_probability
from ..inference.parallel_mc import CompiledPolynomial, parallel_conditioned_pair
from ..provenance.polynomial import Literal, Polynomial, ProbabilityMap
from .result import QueryResult, register_result


class InfluenceScore:
    """One literal's influence on the queried tuple."""

    __slots__ = ("literal", "influence")

    def __init__(self, literal: Literal, influence: float) -> None:
        self.literal = literal
        self.influence = influence

    def __iter__(self):
        return iter((self.literal, self.influence))

    def __repr__(self) -> str:
        return "InfluenceScore(%s, %.6f)" % (self.literal, self.influence)


@register_result
class InfluenceReport(QueryResult):
    """Ranked influence scores for (a subset of) a polynomial's literals."""

    query_type = "influence"

    def __init__(self, scores: Sequence[InfluenceScore], method: str) -> None:
        self.scores = tuple(
            sorted(scores, key=lambda s: (-s.influence, str(s.literal))))
        self.method = method

    def top(self, k: int) -> Tuple[InfluenceScore, ...]:
        return self.scores[:k]

    @property
    def most_influential(self) -> Optional[InfluenceScore]:
        return self.scores[0] if self.scores else None

    def ranking(self) -> Tuple[Literal, ...]:
        return tuple(score.literal for score in self.scores)

    def score_of(self, literal: Literal) -> float:
        for score in self.scores:
            if score.literal == literal:
                return score.influence
        raise KeyError("Literal %s not in influence report" % literal)

    def filter(self, predicate: Callable[[Literal], bool]) -> "InfluenceReport":
        """Sub-report of literals passing ``predicate`` (e.g. one relation)."""
        return InfluenceReport(
            [s for s in self.scores if predicate(s.literal)], self.method)

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "scores": [
                {"literal": {"kind": score.literal.kind,
                             "key": score.literal.key},
                 "influence": score.influence}
                for score in self.scores
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InfluenceReport":
        scores = [
            InfluenceScore(
                Literal(entry["literal"]["kind"], entry["literal"]["key"]),
                entry["influence"])
            for entry in payload["scores"]
        ]
        return cls(scores, payload["method"])

    def summary(self) -> str:
        best = self.most_influential
        if best is None:
            return "no literals scored (method=%s)" % self.method
        return "%d literals (method=%s), top: %s=%.6f" % (
            len(self.scores), self.method, best.literal, best.influence)

    def __len__(self) -> int:
        return len(self.scores)

    def __iter__(self):
        return iter(self.scores)

    def __repr__(self) -> str:
        head = ", ".join(
            "%s=%.4f" % (s.literal, s.influence) for s in self.scores[:3])
        return "InfluenceReport(<%d literals, method=%s: %s%s>)" % (
            len(self.scores), self.method, head,
            ", ..." if len(self.scores) > 3 else "",
        )


def exact_influence(polynomial: Polynomial,
                    probabilities: ProbabilityMap,
                    literal: Literal) -> float:
    """Inf_x(λ) via two exact cofactor probabilities."""
    high = exact_probability(polynomial.restrict(literal, True), probabilities)
    low = exact_probability(polynomial.restrict(literal, False), probabilities)
    return high - low


def mc_influence(polynomial: Polynomial,
                 probabilities: ProbabilityMap,
                 literal: Literal,
                 samples: int = 10000,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> float:
    """Sequential Monte-Carlo influence with common random numbers.

    Each sampled assignment is evaluated twice — once with the literal
    forced true, once forced false — and the paired difference is averaged:
    an unbiased estimate of E[λ|x=1 − λ|x=0] (Definition 4.1).
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if rng is None:
        rng = random.Random(seed)
    others = sorted(polynomial.literals() - {literal})
    high = polynomial.restrict(literal, True)
    low = polynomial.restrict(literal, False)
    delta = 0
    for _ in range(samples):
        assignment = {
            lit: rng.random() < probabilities[lit] for lit in others
        }
        delta += int(high.evaluate(assignment)) - int(low.evaluate(assignment))
    return delta / samples


def parallel_influence(polynomial: Polynomial,
                       probabilities: ProbabilityMap,
                       literal: Literal,
                       samples: int = 10000,
                       seed: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None,
                       compiled: Optional[CompiledPolynomial] = None) -> float:
    """Vectorized common-random-numbers influence (Table 8's fast path)."""
    high, low = parallel_conditioned_pair(
        polynomial, probabilities, literal,
        samples=samples, seed=seed, rng=rng, compiled=compiled)
    return high.value - low.value


def joint_influence(polynomial: Polynomial,
                    probabilities: ProbabilityMap,
                    first: Literal, second: Literal) -> float:
    """Second-order influence: the mixed partial ∂²P[λ] / ∂p(x)∂p(y).

    Because P[λ] is multilinear, the mixed partial is the four-cofactor
    combination

        P[x=1,y=1] − P[x=1,y=0] − P[x=0,y=1] + P[x=0,y=0].

    Positive means the literals are *complements* (raising one makes the
    other more influential — e.g. two tuples in one conjunction); negative
    means *substitutes* (alternative derivations of the same tuple); zero
    means their effects are additive.
    """
    if first == second:
        # Multilinear in each variable: the pure second derivative is 0.
        return 0.0
    values = {}
    for x_value in (False, True):
        for y_value in (False, True):
            restricted = polynomial.restrict(first, x_value).restrict(
                second, y_value)
            values[(x_value, y_value)] = exact_probability(
                restricted, probabilities)
    return (values[(True, True)] - values[(True, False)]
            - values[(False, True)] + values[(False, False)])


def most_synergistic_pairs(polynomial: Polynomial,
                           probabilities: ProbabilityMap,
                           k: int = 3,
                           literals: Optional[Sequence[Literal]] = None
                           ) -> List[Tuple[Literal, Literal, float]]:
    """The k literal pairs with the largest |joint influence|.

    Quadratic in the number of literals; restrict via ``literals`` on
    large polynomials.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if literals is None:
        literals = sorted(polynomial.literals())
    scored: List[Tuple[Literal, Literal, float]] = []
    for index, first in enumerate(literals):
        for second in literals[index + 1:]:
            value = joint_influence(polynomial, probabilities, first, second)
            scored.append((first, second, value))
    scored.sort(key=lambda item: (-abs(item[2]), str(item[0]), str(item[1])))
    return scored[:k]


def influence_query(polynomial: Polynomial,
                    probabilities: ProbabilityMap,
                    literals: Optional[Sequence[Literal]] = None,
                    method: str = "exact",
                    samples: int = 10000,
                    seed: Optional[int] = None) -> InfluenceReport:
    """Compute influences for ``literals`` (default: all) and rank them.

    ``method`` ∈ {"exact", "mc", "parallel"}.
    """
    rt = telemetry.runtime()
    if not rt.enabled:
        return _influence_query(
            polynomial, probabilities, literals, method, samples, seed)
    with rt.tracer.span("query.influence", method=method,
                        monomials=len(polynomial)) as span:
        report = _influence_query(
            polynomial, probabilities, literals, method, samples, seed)
        span.set_attribute("literals", len(report.scores))
    return report


def _influence_query(polynomial: Polynomial,
                     probabilities: ProbabilityMap,
                     literals: Optional[Sequence[Literal]],
                     method: str,
                     samples: int,
                     seed: Optional[int]) -> InfluenceReport:
    if literals is None:
        literals = sorted(polynomial.literals())
    scores: List[InfluenceScore] = []
    if method == "exact":
        for literal in literals:
            scores.append(InfluenceScore(
                literal, exact_influence(polynomial, probabilities, literal)))
    elif method == "mc":
        rng = random.Random(seed)
        for literal in literals:
            scores.append(InfluenceScore(
                literal,
                mc_influence(polynomial, probabilities, literal,
                             samples=samples, rng=rng)))
    elif method == "parallel":
        rng = np.random.default_rng(seed)
        compiled = CompiledPolynomial(polynomial)
        for literal in literals:
            scores.append(InfluenceScore(
                literal,
                parallel_influence(polynomial, probabilities, literal,
                                   samples=samples, rng=rng,
                                   compiled=compiled)))
    else:
        raise ValueError(
            "Unknown influence method %r (expected exact/mc/parallel)" % method)
    return InfluenceReport(scores, method)


def top_k_influence(polynomial: Polynomial,
                    probabilities: ProbabilityMap,
                    k: int,
                    method: str = "exact",
                    samples: int = 10000,
                    seed: Optional[int] = None) -> Tuple[InfluenceScore, ...]:
    """Convenience: the top-K most influential literals."""
    report = influence_query(
        polynomial, probabilities, method=method, samples=samples, seed=seed)
    return report.top(k)
