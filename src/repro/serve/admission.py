"""Admission control for the provenance service.

The service admits a bounded amount of concurrent work and sheds the
rest *before* it reaches an executor, with HTTP status codes clients can
act on:

* **429 Too Many Requests** — the bounded wait queue is full, or one
  tenant holds too many in-flight slots.  Retry after the hinted delay.
* **503 Service Unavailable** — every rung of a tenant's fallback
  ladder has an open circuit breaker, so a query could only fail.
  Retry after the breaker cooldown.

Admission happens on the event loop (async), while the admitted work
runs on executor threads — so the semaphore here is an
:class:`asyncio.Semaphore` and must only be touched from the loop.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, AsyncIterator, Dict, Optional

from ..core.errors import P3Error
from ..telemetry import runtime as telemetry_runtime

__all__ = ["AdmissionController", "AdmissionError"]


class AdmissionError(P3Error):
    """A request was shed at the door; maps to 429 or 503."""

    def __init__(self, status: int, message: str,
                 retry_after: float) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after

    def to_dict(self) -> Dict[str, Any]:
        return {"status": self.status,
                "retry_after_seconds": round(self.retry_after, 3)}


class AdmissionController:
    """Bounded concurrency + bounded queue + breaker-aware fast rejects.

    ``max_concurrent`` requests execute at once; up to ``max_queue``
    more wait for a slot; anything beyond is rejected with 429.  A
    per-tenant ``max_tenant_inflight`` stops one tenant from occupying
    every slot.
    """

    def __init__(self, max_concurrent: int = 8, max_queue: int = 16,
                 max_tenant_inflight: Optional[int] = None,
                 retry_after_seconds: float = 1.0) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if max_tenant_inflight is not None and max_tenant_inflight < 1:
            raise ValueError("max_tenant_inflight must be positive or None")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.max_tenant_inflight = max_tenant_inflight
        self.retry_after_seconds = retry_after_seconds
        self._slots = asyncio.Semaphore(max_concurrent)
        self._queued = 0
        self._inflight = 0
        self._admitted_total = 0
        self._rejected_total = 0
        self._draining = False

    # -- lifecycle ---------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    def begin_drain(self) -> None:
        """Close the door: every new request is shed with 503.

        In-flight (and already-queued) requests keep their slots and run
        to completion; the service's drain loop watches ``inflight``
        reach zero.  Idempotent.
        """
        self._draining = True

    # -- telemetry ---------------------------------------------------

    def _gauge(self, name: str, help_text: str, value: float) -> None:
        rt = telemetry_runtime()
        if rt.enabled:
            rt.metrics.gauge(name, help_text).labels().set(value)

    def _record_pressure(self) -> None:
        self._gauge("p3_http_queue_depth",
                    "Requests waiting for an admission slot.", self._queued)
        self._gauge("p3_http_inflight",
                    "Admitted requests currently executing.", self._inflight)

    def _record_shed(self, status: int) -> None:
        self._rejected_total += 1
        rt = telemetry_runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_http_shed_total",
                "Requests rejected by admission control.",
                ("status",)).labels(status=str(status)).inc()

    # -- checks ------------------------------------------------------

    def check_breakers(self, tenant: Any) -> None:
        """Fast-fail with 503 when no ladder rung could possibly answer.

        A single open breaker is fine — that is what the fallback ladder
        is for.  Only when *every* rung is open is the tenant incapable
        of answering, and admitting the request would just burn a slot.
        """
        board = tenant.executor.breaker_board
        ladder = tenant.executor.fallback_ladder
        if board is None or ladder is None:
            return
        from ..resilience.breaker import OPEN
        states = [board.breaker(rung.method).state for rung in ladder.rungs]
        if states and all(state == OPEN for state in states):
            self._record_shed(503)
            raise AdmissionError(
                503,
                "All inference backends for tenant %r have open circuit "
                "breakers" % tenant.name,
                retry_after=board.policy.cooldown_seconds)

    @contextlib.asynccontextmanager
    async def admit(self, tenant: Optional[Any] = None) -> AsyncIterator[None]:
        """Hold one admission slot for the duration of the request."""
        if self._draining:
            self._record_shed(503)
            raise AdmissionError(
                503, "Service is draining for shutdown",
                retry_after=self.retry_after_seconds)
        if tenant is not None:
            if (self.max_tenant_inflight is not None
                    and tenant.inflight >= self.max_tenant_inflight):
                self._record_shed(429)
                raise AdmissionError(
                    429,
                    "Tenant %r already has %d requests in flight"
                    % (tenant.name, tenant.inflight),
                    retry_after=self.retry_after_seconds)
            self.check_breakers(tenant)
        if self._slots.locked() and self._queued >= self.max_queue:
            self._record_shed(429)
            raise AdmissionError(
                429,
                "Service at capacity (%d executing, %d queued)"
                % (self._inflight, self._queued),
                retry_after=self.retry_after_seconds)
        self._queued += 1
        self._record_pressure()
        try:
            await self._slots.acquire()
        finally:
            self._queued -= 1
        self._inflight += 1
        self._admitted_total += 1
        if tenant is not None:
            tenant.inflight += 1
        self._record_pressure()
        try:
            yield
        finally:
            self._inflight -= 1
            if tenant is not None:
                tenant.inflight -= 1
            self._slots.release()
            self._record_pressure()

    def snapshot(self) -> Dict[str, Any]:
        """Current pressure, for ``/healthz`` and tests."""
        return {
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "inflight": self._inflight,
            "queued": self._queued,
            "admitted_total": self._admitted_total,
            "rejected_total": self._rejected_total,
            "draining": self._draining,
        }
