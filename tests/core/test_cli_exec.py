"""CLI coverage for the executor-backed subcommands and flags.

The ``query`` subcommand, the ``--stats`` observability flag, and the
``--json`` QueryResult output mode, exercised through ``main()`` and (once)
through a real ``python -m repro`` subprocess.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.cli import main
from repro.data import ACQUAINTANCE
from repro.io.serialize import load_query_result

KEY = 'know("Ben","Elena")'


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "acquaintance.pl"
    path.write_text(ACQUAINTANCE)
    return str(path)


@pytest.fixture()
def directive_file(tmp_path):
    path = tmp_path / "directives.pl"
    path.write_text(ACQUAINTANCE + '\nquery(know("Ben","Elena")).\n')
    return str(path)


class TestQuery:
    def test_explicit_tuples(self, program_file, capsys):
        assert main(["query", program_file, KEY,
                     'know("Steve","Elena")']) == 0
        output = capsys.readouterr().out
        assert "0.163840" in output
        assert 'know("Steve","Elena")' in output

    def test_program_directives(self, directive_file, capsys):
        assert main(["query", directive_file]) == 0
        assert "0.163840" in capsys.readouterr().out

    def test_no_directives_errors(self, program_file, capsys):
        assert main(["query", program_file]) == 2
        assert "query(...)" in capsys.readouterr().err

    def test_unknown_tuple_partial_failure(self, program_file, capsys):
        code = main(["query", program_file, KEY, 'know("No","One")'])
        assert code == 1
        captured = capsys.readouterr()
        assert "0.163840" in captured.out
        assert "ERROR" in captured.out
        assert "failed" in captured.err

    def test_json_document(self, program_file, capsys):
        assert main(["query", program_file, KEY, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "query_batch"
        assert document["results"][KEY] == pytest.approx(0.163840)

    def test_workers_flag(self, program_file, capsys):
        assert main(["query", program_file, KEY, "--workers", "2"]) == 0
        assert "0.163840" in capsys.readouterr().out


class TestStatsFlag:
    def test_stats_on_stderr(self, program_file, capsys):
        assert main(["query", program_file, KEY, "--stats"]) == 0
        captured = capsys.readouterr()
        stats = json.loads(captured.err)
        assert stats["stages"]["parse"]["calls"] == 1
        assert stats["stages"]["evaluate"]["seconds"] > 0
        assert stats["stages"]["extract"]["calls"] >= 1
        assert stats["stages"]["infer"]["seconds"] > 0
        assert stats["queries"]["probability"] == 1
        assert "polynomial" in stats["caches"]
        # stdout stays clean for piping.
        assert "stages" not in captured.out

    def test_stats_with_explain(self, program_file, capsys):
        assert main(["explain", program_file, KEY, "--stats"]) == 0
        stats = json.loads(capsys.readouterr().err)
        assert stats["queries"]["explain"] == 1


class TestJsonMode:
    def test_explain_envelope_round_trips(self, program_file, capsys):
        assert main(["explain", program_file, KEY, "--json"]) == 0
        explanation = load_query_result(capsys.readouterr().out)
        assert explanation.query_type == "explanation"
        assert explanation.probability == pytest.approx(0.163840)

    def test_derive_envelope(self, program_file, capsys):
        assert main(["derive", program_file, KEY,
                     "--epsilon", "0.05", "--json"]) == 0
        result = load_query_result(capsys.readouterr().out)
        assert result.query_type == "derivation"
        assert result.error <= 0.05

    def test_influence_envelope_respects_top(self, program_file, capsys):
        assert main(["influence", program_file, KEY,
                     "--top", "2", "--json"]) == 0
        report = load_query_result(capsys.readouterr().out)
        assert report.query_type == "influence"
        assert len(report.scores) == 2

    def test_modify_envelope(self, program_file, capsys):
        assert main(["modify", program_file, KEY,
                     "--target", "0.5", "--json"]) == 0
        plan = load_query_result(capsys.readouterr().out)
        assert plan.query_type == "modification"
        assert plan.reached


PATH_PROGRAM = """
t1 0.5: edge(1,2).
t2 0.9: edge(2,3).
r1 1.0: path(X,Y) :- edge(X,Y).
r2 0.5: path(X,Z) :- edge(X,Y), path(Y,Z).
"""


@pytest.fixture()
def path_file(tmp_path):
    path = tmp_path / "path.pl"
    path.write_text(PATH_PROGRAM)
    return str(path)


@pytest.fixture()
def updates_file(tmp_path):
    path = tmp_path / "updates.pl"
    path.write_text("t3 0.25: edge(3,4).\n")
    return str(path)


class TestUpdate:
    def test_applies_and_requeries(self, path_file, updates_file, capsys):
        code = main(["update", path_file, updates_file, "path(1,4)"])
        assert code == 0
        output = capsys.readouterr().out
        assert "update applied" in output
        assert "(epoch 1)" in output
        assert "path(1,4)" in output

    def test_json_envelope(self, path_file, updates_file, capsys):
        code = main(["update", path_file, updates_file, "path(1,4)",
                     "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "update"
        assert document["epoch"] == 1
        assert document["delta"]["derived"] > 0
        scratch = repro.P3.from_source(
            PATH_PROGRAM + "\nt3 0.25: edge(3,4).")
        scratch.evaluate()
        assert document["results"]["path(1,4)"] == pytest.approx(
            scratch.probability_of("path", 1, 4))

    def test_answers_program_directives(self, path_file, tmp_path,
                                        updates_file, capsys):
        directive = tmp_path / "path_q.pl"
        directive.write_text(PATH_PROGRAM + "\nquery(path(1,4)).\n")
        code = main(["update", str(directive), updates_file])
        assert code == 0
        assert "path(1,4)" in capsys.readouterr().out

    def test_updates_with_rules_rejected(self, path_file, tmp_path, capsys):
        bad = tmp_path / "bad.pl"
        bad.write_text("r9 1.0: loop(X,Y) :- path(Y,X).\n")
        code = main(["update", path_file, str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stats_include_update_stage(self, path_file, updates_file,
                                        capsys):
        code = main(["update", path_file, updates_file, "path(1,4)",
                     "--stats"])
        assert code == 0
        stats = json.loads(capsys.readouterr().err)
        assert stats["stages"]["update"]["calls"] == 1

    def test_timeout_flag_accepted(self, path_file, updates_file, capsys):
        code = main(["update", path_file, updates_file, "path(1,4)",
                     "--timeout", "30"])
        assert code == 0


class TestSubprocess:
    def test_python_dash_m_repro(self, directive_file):
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "query", directive_file,
             "--stats", "--json"],
            capture_output=True, text=True, env=env, timeout=120)
        assert completed.returncode == 0, completed.stderr
        document = json.loads(completed.stdout)
        assert document["results"][KEY] == pytest.approx(0.163840)
        stats = json.loads(completed.stderr)
        assert stats["total_queries"] == 1
