"""Workload builders shared by the benchmark modules.

The Section 6 experiments all run against samples of the Bitcoin-OTC trust
network evaluated under the Figure 7 Trust program.  The builders here are
seeded and cached per process, so each bench sees identical data.
"""

from __future__ import annotations

import functools
import random
from typing import List, Tuple

from repro import P3, P3Config
from repro.data import generate_network, paper_fragment
from repro.data.bitcoin_otc import TrustNetwork
from repro.datalog.ast import Program
from repro.provenance.polynomial import Polynomial

#: Hop limits used by the paper (Sections 6.1 and 6.2).
MAINTENANCE_HOP_LIMIT = 4
QUERY_HOP_LIMIT = 6


@functools.lru_cache(maxsize=1)
def full_network() -> TrustNetwork:
    """The synthetic Bitcoin-OTC-like network (5,881 nodes, 35,592 edges)."""
    return generate_network()


def bfs_sample(node_budget: int, seed: int = 1) -> TrustNetwork:
    """A Section-6.1-style BFS sample of the full network."""
    return full_network().bfs_sample(node_budget, seed=seed)


@functools.lru_cache(maxsize=1)
def full_graph_program() -> Program:
    """The full 35k-edge network as a Trust program, built once per process.

    ``to_program`` dominates setup time at this scale; multi-benchmark
    runs (and the grounding bench's repeated system builds) share this
    single parse.
    """
    return full_network().to_program()


def full_graph_trust_pairs(seed: int = 2020,
                           count: int = 5) -> List[Tuple[int, int]]:
    """Seeded single-pair trust query targets on the full graph.

    Picks directed edges ``(src, dst)`` whose endpoints have modest
    fanout, so ``trustPath(src,dst)`` is derivable (the edge itself is a
    one-hop witness) while hop-bounded extraction stays within default
    budgets — the workload shape of the paper's single-pair provenance
    queries, but against the *full* network.
    """
    network = full_network()
    rng = random.Random(seed)
    low_fanout = [
        (src, dst) for (src, dst) in sorted(network.edges)
        if network.out_degree(src) <= 8 and network.out_degree(dst) <= 8
    ]
    if len(low_fanout) < count:
        low_fanout = sorted(network.edges)
    return rng.sample(low_fanout, count)


@functools.lru_cache(maxsize=4)
def query_workload(seed: int = 5) -> Tuple[P3, str, Polynomial]:
    """The Section-6.2 workload: a 150-node/150-edge sample, evaluated,
    with the mutual-trust tuple that has the richest provenance.

    Returns (evaluated P3 system, tuple key, its hop-6 polynomial).
    """
    sample = full_network().sample_nodes_edges(150, 150, seed=seed)
    p3 = P3(sample.to_program(), P3Config(hop_limit=QUERY_HOP_LIMIT))
    p3.evaluate()
    best_key = None
    best_poly = None
    for atom in p3.derived_atoms("mutualTrustPath"):
        key = str(atom)
        poly = p3.polynomial_of(key)
        if best_poly is None or len(poly) > len(best_poly):
            best_key, best_poly = key, poly
    assert best_key is not None, "sample produced no mutual trust paths"
    return p3, best_key, best_poly


@functools.lru_cache(maxsize=1)
def fragment_workload() -> Tuple[P3, str, Polynomial]:
    """The paper's 6-node fragment (Tables 5-7), evaluated."""
    p3 = P3(paper_fragment().to_program())
    p3.evaluate()
    key = "mutualTrustPath(1,6)"
    return p3, key, p3.polynomial_of(key)


def epsilon_grid() -> List[float]:
    """The approximation-error grid of Figures 11-14 (0.1% to 10%)."""
    return [0.001, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10]
