"""``repro.resilience``: budgets, retries, fallback ladders, breakers, chaos.

The query pipeline mixes exact inference (worst-case exponential in the
provenance polynomial) with stochastic estimators and a threaded batch
executor.  A production deployment must survive pathological inputs, slow
or crashing backends, and wedged worker pools without dropping queries.
This package provides the four mechanisms that make that survivable, plus
the harness that proves it:

- :class:`~repro.resilience.budgets.ResourceBudget` — configurable caps on
  monomial count, monomial width, extraction node visits, and
  compiled-polynomial memory, enforced *inside* provenance extraction and
  :class:`~repro.inference.parallel_mc.CompiledPolynomial` through an
  ambient (contextvar-scoped) budget meter.  A blown budget raises a typed
  :class:`~repro.core.errors.BudgetExceededError` carrying partial
  progress.
- :class:`~repro.resilience.retry.RetryPolicy` — bounded retries with
  exponential backoff and jitter, applied only to
  :class:`~repro.core.errors.TransientInferenceError` classes.
- :class:`~repro.resilience.breaker.CircuitBreaker` — per-backend
  closed/open/half-open breakers with failure-rate thresholds and
  cooldown, so a repeatedly failing backend is skipped for subsequent
  specs in a batch instead of burning every query's deadline.
- :class:`~repro.resilience.ladder.FallbackLadder` — a declarative chain
  of inference backends (e.g. exact → bdd → parallel) driven through
  :mod:`repro.inference.registry`; every answer carries a
  :class:`~repro.resilience.ladder.ResilienceRecord` naming the rung that
  answered, the attempts made, and the accuracy downgrade.
- :class:`~repro.resilience.isolation.ProcessWorkerPool` — spawn-based
  subprocess inference workers (``P3Config(isolation="process")``) with
  hard cancellation (SIGKILL + respawn), per-worker ``RLIMIT_AS`` memory
  caps, and crash containment: worker deaths become typed
  :class:`~repro.core.errors.WorkerCrashError` /
  :class:`~repro.core.errors.WorkerMemoryError` /
  :class:`~repro.core.errors.WorkerTimeoutError` outcomes, never a dead
  service.
- :func:`~repro.resilience.chaos.run_chaos` — the chaos harness
  (``p3 chaos``): inject backend exceptions, delays, budget blowups, and
  a pool hang into a live batch and assert every spec still yields a
  well-formed outcome; process-level faults (``kill9``, ``oom``,
  ``wedge-native``) exercise the isolation pool's recovery paths.

Configuration enters through :class:`ResilienceConfig` — the
``P3Config(resilience=...)`` knob group — and every resilience event
(retry, trip, fallback, budget hit, pool rebuild) emits telemetry
counters and span attributes through :mod:`repro.telemetry`.
"""

from __future__ import annotations

from .budgets import BudgetMeter, ResourceBudget, activate_budget, active_meter
from .breaker import (
    BreakerBoard,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
)
from .config import ResilienceConfig
from .isolation import ProcessWorkerPool, process_isolation_supported
from .ladder import (
    FallbackLadder,
    FallbackRung,
    LadderExhaustedError,
    ResilienceRecord,
    RungTimeoutError,
)
from .retry import RetryPolicy

__all__ = [
    "BreakerBoard",
    "BreakerPolicy",
    "BudgetMeter",
    "CircuitBreaker",
    "CircuitOpenError",
    "FallbackLadder",
    "FallbackRung",
    "LadderExhaustedError",
    "ProcessWorkerPool",
    "ResilienceConfig",
    "ResilienceRecord",
    "ResourceBudget",
    "RetryPolicy",
    "RungTimeoutError",
    "activate_budget",
    "active_meter",
    "process_isolation_supported",
]
