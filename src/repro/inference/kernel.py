"""The bitset-packed NumPy sampling kernel shared by every MC backend.

Table 8 of the paper frames DNF sampling as embarrassingly parallel; this
module is the single compiled evaluation path behind the ``mc``,
``parallel``, and ``karp-luby`` backends (plus the derivation and
influence queries).  The design replaces the earlier BLAS
membership-matrix evaluation with word-packed bitsets:

- the whole sample matrix is drawn per literal at once
  (``Generator.random`` releases the GIL while filling);
- each row of Booleans is packed into ``ceil(vars/64)`` little-endian
  ``uint64`` words (:meth:`CompiledPolynomial.pack_rows`);
- a monomial is one packed mask, satisfied by a row exactly when
  ``row & mask == mask`` across all words — a handful of GIL-releasing
  ufunc passes per monomial over the whole batch, with no BLAS (and so
  no OpenBLAS thread-pool oversubscription when the batch executor fans
  out on top).

Sampling is **chunked**: a fixed ``DEFAULT_CHUNK``-row window bounds the
transient matrix, lets the ambient resource budget
(:mod:`repro.resilience.budgets`) cap the working set, and gives the
estimators a natural place to honor an absolute deadline by truncating
the draw (the estimate reports the samples actually drawn).  Because a
NumPy ``Generator`` stream is consumed sequentially, chunked plain-MC
draws are bit-identical to one monolithic draw — chunk size never
changes results.

Multi-worker sampling (``workers > 1``) splits the budget into
fixed-size shards seeded via ``SeedSequence.spawn``.  The shard layout
depends only on ``samples``, never on the worker count, so results are
deterministic across worker counts; shards run on a shared daemon
thread pool and achieve real concurrency because both the RNG fill and
the packed-mask ufuncs release the GIL.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import InferenceConfigurationError
from ..provenance.polynomial import (
    Literal,
    Monomial,
    Polynomial,
    ProbabilityMap,
)
from ..resilience.budgets import active_meter
from .montecarlo import MonteCarloEstimate

__all__ = [
    "CompiledPolynomial",
    "kernel_probability",
    "kernel_karp_luby",
    "DEFAULT_CHUNK",
    "SHARD_SIZE",
]

#: Rows drawn per sampling chunk: bounds the transient sample matrix
#: (64k rows × vars bools) while keeping the per-chunk ufunc cost large
#: enough to amortize Python overhead.
DEFAULT_CHUNK = 65536

#: Rows per worker shard.  The shard layout is a function of the sample
#: budget only, so estimates are reproducible across worker counts.
SHARD_SIZE = 16384

_BITS = np.uint64(64)
_ONE = np.uint64(1)


class CompiledPolynomial:
    """A DNF compiled to packed ``uint64`` monomial masks.

    Compilation is one-time per polynomial; the compiled form is
    evaluated repeatedly (influence queries evaluate the same polynomial
    under many conditionings, batch estimators chunk over it).

    Monomials are held in *canonical order* — sorted by (width, literal
    indices) — shared by every kernel estimator; the Karp–Luby
    first-satisfier rule and :meth:`satisfaction_matrix` columns both
    refer to this order.
    """

    def __init__(self, polynomial: Polynomial) -> None:
        self.polynomial = polynomial
        self.literals: List[Literal] = sorted(polynomial.literals())
        self._index: Dict[Literal, int] = {
            literal: i for i, literal in enumerate(self.literals)
        }
        #: Words per packed row (0 for the variable-free polynomial).
        self.words = (len(self.literals) + 63) // 64
        # Canonical order: width first (cheap monomials short-circuit the
        # OR most often), literal indices as the tie-break so the order
        # is stable and independent of input ordering.
        decorated = []
        for monomial in polynomial.monomials:
            indices = np.fromiter(
                (self._index[lit] for lit in monomial.literals),
                dtype=np.intp, count=len(monomial))
            indices.sort()
            decorated.append((indices.size, tuple(indices), indices,
                              monomial))
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        #: Monomials as sorted literal-index arrays, canonical order.
        self.monomials: List[np.ndarray] = [e[2] for e in decorated]
        #: The Monomial objects in canonical order.
        self.monomial_order: List[Monomial] = [e[3] for e in decorated]
        self._columns: Dict[Monomial, int] = {
            monomial: column
            for column, monomial in enumerate(self.monomial_order)
        }
        self._has_empty_monomial = any(
            m.size == 0 for m in self.monomials)
        # One packed mask row per monomial.  An empty monomial's mask is
        # all-zero, which `row & 0 == 0` satisfies on every row — the
        # always-true semantics fall out of the representation.
        meter = active_meter()
        mask_bytes = len(self.monomials) * self.words * 8
        if meter is not None:
            # Budget metering lives in the kernel: the mask matrix is the
            # piece of compiled state that scales as monomials × words,
            # so it is checked *before* allocation.
            meter.check_compiled_bytes(mask_bytes)
        self.masks = np.zeros((len(self.monomials), self.words),
                              dtype=np.uint64)
        for column, indices in enumerate(self.monomials):
            if indices.size == 0:
                continue
            words = indices // 64
            bits = (indices % 64).astype(np.uint64)
            np.bitwise_or.at(self.masks[column], words, _ONE << bits)

    # -- structure ---------------------------------------------------------------

    @property
    def variable_count(self) -> int:
        return len(self.literals)

    def index_of(self, literal: Literal) -> int:
        return self._index[literal]

    def monomial_column(self, monomial: Monomial) -> int:
        """The canonical-order column index of ``monomial``."""
        return self._columns[monomial]

    def probability_vector(self, probabilities: ProbabilityMap) -> np.ndarray:
        return np.array(
            [probabilities[lit] for lit in self.literals], dtype=np.float64)

    def monomial_weights(self, probabilities: ProbabilityMap) -> np.ndarray:
        """P[mⱼ] per monomial, canonical order (the Karp–Luby weights)."""
        vector = self.probability_vector(probabilities)
        return np.array(
            [float(np.prod(vector[indices])) if indices.size else 1.0
             for indices in self.monomials], dtype=np.float64)

    # -- sampling & evaluation ----------------------------------------------------

    def sample_matrix(self, probabilities: ProbabilityMap, samples: int,
                      rng: np.random.Generator) -> np.ndarray:
        """Draw a (samples × variables) Boolean matrix of literal truths."""
        prob_vector = self.probability_vector(probabilities)
        return rng.random((samples, len(self.literals))) < prob_vector

    def pack_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Pack Boolean rows into (rows × words) little-endian ``uint64``."""
        matrix = np.ascontiguousarray(matrix, dtype=bool)
        rows = matrix.shape[0]
        if self.words == 0:
            return np.zeros((rows, 0), dtype=np.uint64)
        packed_bytes = np.packbits(matrix, axis=1, bitorder="little")
        want = self.words * 8
        if packed_bytes.shape[1] != want:
            padded = np.zeros((rows, want), dtype=np.uint8)
            padded[:, :packed_bytes.shape[1]] = packed_bytes
            packed_bytes = padded
        return np.ascontiguousarray(packed_bytes).view(np.uint64)

    def evaluate_packed(self, packed: np.ndarray) -> np.ndarray:
        """Row-wise DNF truth over packed rows (Boolean vector)."""
        rows = packed.shape[0]
        if self._has_empty_monomial:
            return np.ones(rows, dtype=bool)
        if not self.monomials:
            return np.zeros(rows, dtype=bool)
        satisfied = np.zeros(rows, dtype=bool)
        for mask in self.masks:
            # Shortest monomials first (canonical order): they satisfy
            # most often, so the all-satisfied early exit fires soonest.
            np.logical_or(
                satisfied,
                ((packed & mask) == mask).all(axis=1),
                out=satisfied)
            if satisfied.all():
                break
        return satisfied

    def evaluate_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Evaluate the DNF row-wise: Boolean vector of length ``rows``."""
        matrix = np.asarray(matrix)
        if self._has_empty_monomial:
            return np.ones(matrix.shape[0], dtype=bool)
        if not self.monomials:
            return np.zeros(matrix.shape[0], dtype=bool)
        return self.evaluate_packed(self.pack_rows(matrix))

    def satisfaction_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Per-monomial satisfaction: (rows × monomials) Booleans.

        Columns follow canonical order (:attr:`monomial_order`, see
        :meth:`monomial_column`).  Empty monomials yield all-True
        columns.  Used by the Karp–Luby first-satisfier rule and the
        derivation query's incremental removal loop.
        """
        packed = self.pack_rows(np.asarray(matrix))
        return self.satisfaction_packed(packed)

    def satisfaction_packed(self, packed: np.ndarray) -> np.ndarray:
        out = np.empty((packed.shape[0], len(self.monomials)), dtype=bool)
        for column, mask in enumerate(self.masks):
            out[:, column] = ((packed & mask) == mask).all(axis=1)
        return out

    def __repr__(self) -> str:
        return "CompiledPolynomial(%d monomials, %d vars, %d words)" % (
            len(self.monomials), len(self.literals), self.words)


# -- shared worker pool -----------------------------------------------------------

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_LOCK = threading.Lock()


def _shared_pool() -> ThreadPoolExecutor:
    """A process-wide daemon pool for sample shards.

    Shared so per-call pool construction stays off the hot path; sized to
    the machine, while each call's ``workers`` hint only decides whether
    to use it at all.
    """
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=min(8, os.cpu_count() or 2),
                thread_name_prefix="p3-kernel")
        return _POOL


# -- estimators -------------------------------------------------------------------

def _chunk_rows(compiled: CompiledPolynomial, samples: int) -> int:
    """Plain-MC chunk size bounded by the ambient compiled-bytes budget.

    The transient per-chunk state is the Boolean matrix plus its packed
    form; the budget's ``max_compiled_bytes`` caps it (a polynomial too
    wide for even a one-row chunk trips the budget error).  Shrinking the
    chunk is safe *only* for estimators that consume their Generator
    stream sequentially (plain MC draws one contiguous stream, so chunked
    draws are bit-identical to a monolithic draw); stream layouts that
    depend on the chunk boundary must use :func:`_kl_chunk_rows` instead.
    """
    chunk = min(DEFAULT_CHUNK, samples)
    meter = active_meter()
    if meter is not None and meter.budget.max_compiled_bytes is not None:
        cap = meter.budget.max_compiled_bytes
        row_bytes = max(1, compiled.variable_count + compiled.words * 8)
        bounded = cap // row_bytes
        if bounded < 1:
            meter.check_compiled_bytes(row_bytes)  # raises BudgetExceeded
        chunk = max(1, min(chunk, bounded))
    return chunk


def _kl_chunk_rows(compiled: CompiledPolynomial, samples: int) -> int:
    """Karp–Luby chunk size: a pure function of the sample budget.

    The KL shard consumes its Generator stream twice per chunk (the
    monomial choice, then the assignment matrix), so the chunk boundary
    is part of the ``(samples, seed)`` reproducibility contract: letting
    the ambient resource budget shrink the chunk would make identical
    ``(samples, seed)`` requests return *different* estimates under
    different ``max_compiled_bytes`` settings.  The layout is therefore
    fixed at ``min(DEFAULT_CHUNK, samples)``; when that chunk's transient
    matrix cannot fit the budget, the typed budget error is raised
    instead of silently adapting the layout.
    """
    chunk = min(DEFAULT_CHUNK, samples)
    meter = active_meter()
    if meter is not None and meter.budget.max_compiled_bytes is not None:
        row_bytes = max(1, compiled.variable_count + compiled.words * 8)
        if chunk * row_bytes > meter.budget.max_compiled_bytes:
            meter.check_compiled_bytes(chunk * row_bytes)  # raises
    return chunk


def _degenerate(polynomial: Polynomial,
                samples: int) -> Optional[MonteCarloEstimate]:
    if samples <= 0:
        raise InferenceConfigurationError("samples must be positive")
    if polynomial.is_zero:
        return MonteCarloEstimate(0.0, samples, 0)
    if polynomial.is_one:
        return MonteCarloEstimate(1.0, samples, samples)
    return None


def _mc_shard(compiled: CompiledPolynomial, prob_vector: np.ndarray,
              samples: int, rng: np.random.Generator,
              deadline: Optional[float], chunk: int,
              first: bool) -> Tuple[int, int]:
    """Draw up to ``samples`` rows; returns (hits, drawn).

    Honors the absolute deadline between chunks; the ``first`` shard
    always draws at least one chunk so an estimate is never empty.
    """
    hits = 0
    drawn = 0
    while drawn < samples:
        if deadline is not None and not (first and drawn == 0) \
                and time.monotonic() >= deadline:
            break
        step = min(chunk, samples - drawn)
        matrix = rng.random((step, prob_vector.size)) < prob_vector
        hits += int(compiled.evaluate_matrix(matrix).sum())
        drawn += step
    return hits, drawn


def kernel_probability(polynomial: Polynomial,
                       probabilities: ProbabilityMap,
                       samples: int = 10000,
                       seed: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None,
                       compiled: Optional[CompiledPolynomial] = None,
                       workers: int = 1,
                       deadline: Optional[float] = None
                       ) -> MonteCarloEstimate:
    """Vectorized Monte-Carlo estimate of P[λ] over the packed kernel.

    With an explicit ``rng`` (or ``samples <= SHARD_SIZE``) the draw is
    one sequential Generator stream — chunked internally, but
    bit-identical to a monolithic draw.  Larger seeded budgets are split
    into :data:`SHARD_SIZE` shards seeded by
    ``SeedSequence(seed).spawn``; the shard layout depends only on
    ``samples`` and ``workers`` decides nothing but concurrency, so a
    given ``(samples, seed)`` produces the identical estimate for every
    worker count.  A ``deadline`` truncates the draw; the estimate's
    ``samples`` reports the rows actually drawn.
    """
    shortcut = _degenerate(polynomial, samples)
    if shortcut is not None:
        return shortcut
    if compiled is None:
        compiled = CompiledPolynomial(polynomial)
    prob_vector = compiled.probability_vector(probabilities)
    chunk = _chunk_rows(compiled, samples)

    if rng is not None or samples <= SHARD_SIZE:
        if rng is None:
            rng = np.random.default_rng(seed)
        hits, drawn = _mc_shard(compiled, prob_vector, samples, rng,
                                deadline, chunk, first=True)
        return MonteCarloEstimate(hits / drawn, drawn, hits)

    shard_sizes = [SHARD_SIZE] * (samples // SHARD_SIZE)
    if samples % SHARD_SIZE:
        shard_sizes.append(samples % SHARD_SIZE)
    streams = np.random.SeedSequence(seed).spawn(len(shard_sizes))

    def run_shard(index: int) -> Tuple[int, int]:
        return _mc_shard(
            compiled, prob_vector, shard_sizes[index],
            np.random.default_rng(streams[index]), deadline, chunk,
            first=index == 0)

    if workers <= 1:
        results = [run_shard(i) for i in range(len(shard_sizes))]
    else:
        pool = _shared_pool()
        results = list(pool.map(run_shard, range(len(shard_sizes))))
    hits = sum(h for h, _ in results)
    drawn = sum(d for _, d in results)
    return MonteCarloEstimate(hits / drawn, drawn, hits)


def _kl_shard(compiled: CompiledPolynomial, prob_vector: np.ndarray,
              weights: np.ndarray, total_weight: float, samples: int,
              rng: np.random.Generator, deadline: Optional[float],
              chunk: int, first: bool) -> Tuple[int, int]:
    """One Karp–Luby shard; returns (hits, drawn).

    Unlike the plain-MC shard this consumes the stream twice per chunk
    (monomial choice, then the assignment matrix), so a given seed's
    results are a function of the chunk size; the chunk is therefore
    fixed by :func:`_kl_chunk_rows` — a pure function of the sample
    budget, never of the ambient resource budget — so identical
    ``(samples, seed)`` requests are reproducible across budgets.
    """
    normalized = weights / total_weight
    columns = len(compiled.monomials)
    hits = 0
    drawn = 0
    while drawn < samples:
        if deadline is not None and not (first and drawn == 0) \
                and time.monotonic() >= deadline:
            break
        step = min(chunk, samples - drawn)
        chosen = rng.choice(columns, size=step, p=normalized)
        matrix = rng.random((step, prob_vector.size)) < prob_vector
        packed = compiled.pack_rows(matrix)
        # Force the chosen monomial's literals true directly in the
        # packed domain: OR-ing its mask in is the conditioning step.
        packed |= compiled.masks[chosen]
        # First satisfier in canonical order: walk monomials from the
        # last canonical column down, overwriting, so the smallest
        # satisfied column wins.
        first_sat = np.full(step, columns, dtype=np.int64)
        for column in range(columns - 1, -1, -1):
            mask = compiled.masks[column]
            sat = ((packed & mask) == mask).all(axis=1)
            first_sat[sat] = column
        hits += int((first_sat == chosen).sum())
        drawn += step
    return hits, drawn


def kernel_karp_luby(polynomial: Polynomial,
                     probabilities: ProbabilityMap,
                     samples: int = 10000,
                     seed: Optional[int] = None,
                     rng: Optional[np.random.Generator] = None,
                     compiled: Optional[CompiledPolynomial] = None,
                     workers: int = 1,
                     deadline: Optional[float] = None
                     ) -> MonteCarloEstimate:
    """Vectorized Karp–Luby estimate over the packed kernel.

    Same sharding and deadline semantics as :func:`kernel_probability`;
    the returned estimate's ``scale`` is the union weight W = Σⱼ P[mⱼ]
    and its ``value`` is deliberately unclamped (see
    :mod:`repro.inference.karp_luby`).

    **Reproducibility contract:** the stream layout (shards and chunks)
    is a function of ``samples`` alone.  In particular the ambient
    resource budget never reshapes the chunking — identical
    ``(samples, seed)`` requests return the identical estimate under
    every ``max_compiled_bytes`` setting, or raise
    :class:`~repro.core.errors.BudgetExceededError` when the fixed
    chunk's working set cannot fit the budget.
    """
    shortcut = _degenerate(polynomial, samples)
    if shortcut is not None:
        return shortcut
    if compiled is None:
        compiled = CompiledPolynomial(polynomial)
    prob_vector = compiled.probability_vector(probabilities)
    weights = compiled.monomial_weights(probabilities)
    total_weight = float(weights.sum())
    if total_weight == 0.0:
        return MonteCarloEstimate(0.0, samples, 0)
    chunk = _kl_chunk_rows(compiled, samples)

    if rng is not None or samples <= SHARD_SIZE:
        if rng is None:
            rng = np.random.default_rng(seed)
        hits, drawn = _kl_shard(
            compiled, prob_vector, weights, total_weight, samples, rng,
            deadline, chunk, first=True)
        return MonteCarloEstimate((hits / drawn) * total_weight, drawn,
                                  hits, scale=total_weight)

    shard_sizes = [SHARD_SIZE] * (samples // SHARD_SIZE)
    if samples % SHARD_SIZE:
        shard_sizes.append(samples % SHARD_SIZE)
    streams = np.random.SeedSequence(seed).spawn(len(shard_sizes))

    def run_shard(index: int) -> Tuple[int, int]:
        return _kl_shard(
            compiled, prob_vector, weights, total_weight,
            shard_sizes[index], np.random.default_rng(streams[index]),
            deadline, chunk, first=index == 0)

    if workers <= 1:
        results = [run_shard(i) for i in range(len(shard_sizes))]
    else:
        pool = _shared_pool()
        results = list(pool.map(run_shard, range(len(shard_sizes))))
    hits = sum(h for h, _ in results)
    drawn = sum(d for _, d in results)
    return MonteCarloEstimate((hits / drawn) * total_weight, drawn, hits,
                              scale=total_weight)
