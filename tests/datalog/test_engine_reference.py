"""Semi-naive engine vs a naive reference evaluator, on random programs.

The reference evaluator below is deliberately simple: re-derive everything
from everything until fixpoint, collecting (rule, head, body) firings into
a set.  The production engine must produce exactly the same model and the
same firing set on every random program hypothesis throws at it.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program


def naive_reference(program):
    """Naive fixpoint: returns (atoms, firings) as string sets."""
    atoms = {fact.atom for fact in program.facts}
    firings = set()
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            for binding in _all_bindings(rule, atoms):
                head = rule.head.substitute(binding)
                body = tuple(atom.substitute(binding) for atom in rule.body)
                key = (rule.label, str(head), tuple(map(str, body)))
                if key not in firings:
                    firings.add(key)
                    changed = True
                if head not in atoms:
                    atoms.add(head)
                    changed = True
    return {str(atom) for atom in atoms}, firings


def _all_bindings(rule, atoms):
    from repro.datalog.terms import unify_atom

    def extend(position, subst):
        if position == len(rule.body):
            if all(guard.evaluate(subst) for guard in rule.constraints):
                yield dict(subst)
            return
        pattern = rule.body[position]
        # Snapshot: the caller mutates `atoms` while consuming bindings;
        # anything added mid-sweep is picked up by the next fixpoint round.
        for atom in list(atoms):
            extended = unify_atom(pattern, atom, subst)
            if extended is not None:
                yield from extend(position + 1, extended)

    yield from extend(0, {})


class RecordingRecorder:
    def __init__(self):
        self.firings = set()

    def record_fact(self, fact):
        pass

    def record_firing(self, rule, head, body):
        self.firings.add((rule.label, str(head), tuple(map(str, body))))


@st.composite
def random_programs(draw):
    """Small random edge/path-style programs, possibly cyclic."""
    node_count = draw(st.integers(min_value=2, max_value=4))
    nodes = list(range(node_count))
    pairs = [(a, b) for a in nodes for b in nodes if a != b]
    edge_count = draw(st.integers(min_value=1, max_value=min(6, len(pairs))))
    edges = draw(st.permutations(pairs))[:edge_count]
    lines = ["t%d 0.5: edge(%d,%d)." % (i + 1, a, b)
             for i, (a, b) in enumerate(sorted(edges))]
    lines.append("r1 1.0: path(X,Y) :- edge(X,Y).")
    lines.append("r2 0.9: path(X,Z) :- edge(X,Y), path(Y,Z).")
    if draw(st.booleans()):
        lines.append("r3 0.8: loop(X) :- path(X,X).")
    if draw(st.booleans()):
        lines.append("r4 0.7: mutual(X,Y) :- path(X,Y), path(Y,X), X!=Y.")
    return "\n".join(lines)


class TestSemiNaiveCompleteness:
    @settings(max_examples=40, deadline=None)
    @given(random_programs())
    def test_same_model_and_firings(self, source):
        program = parse_program(source)
        recorder = RecordingRecorder()
        result = Engine(program, recorder=recorder,
                        capture_tables=False).run()
        engine_atoms = {str(atom) for atom in result.database.atoms()}

        reference_atoms, reference_firings = naive_reference(
            parse_program(source))

        assert engine_atoms == reference_atoms
        assert recorder.firings == reference_firings

    @settings(max_examples=20, deadline=None)
    @given(random_programs())
    def test_deterministic_across_runs(self, source):
        first = Engine(parse_program(source), capture_tables=False).run()
        second = Engine(parse_program(source), capture_tables=False).run()
        assert {str(a) for a in first.database.atoms()} == \
            {str(a) for a in second.database.atoms()}
        assert first.firing_count == second.firing_count


class TestParserRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(random_programs())
    def test_str_reparse_fixpoint(self, source):
        program = parse_program(source)
        once = str(program)
        twice = str(parse_program(once))
        assert once == twice

    @settings(max_examples=25, deadline=None)
    @given(random_programs())
    def test_reparsed_program_evaluates_identically(self, source):
        original = Engine(parse_program(source), capture_tables=False).run()
        reparsed = Engine(parse_program(str(parse_program(source))),
                          capture_tables=False).run()
        assert {str(a) for a in original.database.atoms()} == \
            {str(a) for a in reparsed.database.atoms()}
