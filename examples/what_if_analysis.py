"""What-if analysis and top-K derivations on a trust network.

This example exercises the two P3 extensions that go beyond the paper's
four query types (they fall out of the same provenance model):

- **Top-K derivations** — the k most probable proofs of a tuple, found by
  lazy best-first search over the provenance graph (no full DNF
  expansion).  Generalises the "most important derivation" of the paper's
  Figures 4 and 8.
- **What-if deletion** — remove trust edges (or rules) and, from
  provenance alone (no re-evaluation), report which tuples lose all of
  their derivations and how target probabilities move.

Run with::

    python examples/what_if_analysis.py
"""

from repro import P3, P3Config
from repro.data import generate_network, paper_fragment


def fragment_walkthrough() -> None:
    print("=" * 72)
    print("Part 1: the paper's 6-node trust fragment")
    print("=" * 72)
    p3 = P3(paper_fragment().to_program())
    p3.evaluate()
    target = "mutualTrustPath(1,6)"
    print("P[%s] = %.4f" % (target, p3.probability_of(target)))

    print("\nTop-3 most probable derivations (lazy search):")
    for rank, (monomial, probability) in enumerate(
            p3.top_derivations(target, k=3), start=1):
        print("  #%d  p=%.4f  %s" % (rank, probability, monomial))

    print("\nWhat if Person 6 stops trusting Person 2?")
    report = p3.what_if(deleted=["trust(6,2)"], targets=[target])
    print(report.to_text())
    print("  -> the only path back from 6 runs through 2, so the mutual")
    print("     trust relationship is not merely weakened but destroyed.")

    print("\nWhat if the direct 1->2 rating disappears instead?")
    report = p3.what_if(deleted=["trust(1,2)"], targets=[target])
    print(report.to_text())
    print("  -> the 1 -> 13 -> 2 detour keeps the path alive at a lower")
    print("     probability.")


def network_walkthrough() -> None:
    print("\n" + "=" * 72)
    print("Part 2: a generated network sample")
    print("=" * 72)
    network = generate_network(nodes=600, edges=2400, seed=17)
    sample = network.sample_nodes_edges(50, 80, seed=4)
    p3 = P3(sample.to_program(), P3Config(hop_limit=4))
    p3.evaluate()

    mutual = sorted(map(str, p3.derived_atoms("mutualTrustPath")))
    if not mutual:
        print("No mutual paths in this sample; re-run with another seed.")
        return
    target = max(mutual, key=lambda key: len(p3.polynomial_of(key)))
    print("Target: %s  (%d derivations)"
          % (target, len(p3.polynomial_of(target))))
    print("P = %.4f" % p3.probability_of(target))

    print("\nTop-3 derivations:")
    top = p3.top_derivations(target, k=3)
    for rank, (monomial, probability) in enumerate(top, start=1):
        print("  #%d  p=%.4f  %s" % (rank, probability, monomial))

    # Delete the most load-bearing trust edge of the best derivation and
    # measure the damage.
    best_edges = sorted(lit.key for lit in top[0][0].literals
                        if lit.is_tuple)
    victim = best_edges[0]
    print("\nWhat if we delete %s (part of the best derivation)?" % victim)
    report = p3.what_if(deleted=[victim], targets=[target])
    print(report.to_text())


def main() -> None:
    fragment_walkthrough()
    network_walkthrough()


if __name__ == "__main__":
    main()
