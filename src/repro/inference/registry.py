"""Uniform registry of P[λ] inference backends.

Every way this repo can compute or estimate the success probability of a
provenance polynomial is registered here under a stable name with one
uniform signature, so callers — the :func:`repro.inference.probability`
front door, the batch executor, and the differential audit harness
(:mod:`repro.audit`) — can enumerate, select, and cross-check backends
mechanically instead of hard-coding method lists.

A backend is an :class:`InferenceBackend`: a name, a kind (``"exact"`` or
``"sampling"``), an applicability predicate (brute force refuses large
polynomials, read-once refuses non-read-once structure), and a runner
``(polynomial, probabilities, request) → BackendReading`` taking a single
typed :class:`~repro.inference.request.InferenceRequest` — samples, seed,
workers, depth, deadline, budget — instead of the per-backend keyword
sprawl this replaced.  The old conventions still work as thin shims:

- ``backend.run(poly, probs, samples=…, seed=…)`` builds a request and
  emits :class:`DeprecationWarning`;
- a four-positional-argument backend function passed to
  :func:`register_backend` / :func:`override_backend` is adapted (with a
  warning) to the request convention.

See docs/INFERENCE.md for migration notes.

Registered backends
-------------------
===============  ========  ====================================================
name             kind      implementation
===============  ========  ====================================================
``brute-force``  exact     2ⁿ assignment enumeration (small polynomials only)
``exact``        exact     memoised Shannon expansion
``bdd``          exact     ROBDD compile + weighted model count
``read-once``    exact     linear-time over a read-once factorization
``mc``           sampling  bitset-kernel Monte-Carlo (single stream)
``parallel``     sampling  bitset-kernel Monte-Carlo (worker-sharded)
``karp-luby``    sampling  Karp–Luby union sampler (unbiased, value may be >1)
===============  ========  ====================================================
"""

from __future__ import annotations

import contextlib
import inspect
import time
import warnings
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .. import telemetry
from ..provenance.polynomial import Polynomial, ProbabilityMap
from ..provenance.readonce import is_read_once, read_once_probability
from ..resilience.budgets import activate_budget, active_meter
from .bdd import bdd_probability
from .exact import brute_force_probability, exact_probability
from .kernel import kernel_karp_luby, kernel_probability
from .request import InferenceRequest

#: Largest literal count the brute-force oracle accepts through the
#: registry (kept below its own hard limit so audits stay fast).
BRUTE_FORCE_LITERAL_LIMIT = 20

#: A backend runner: (polynomial, probabilities, request) → reading.
BackendFn = Callable[[Polynomial, ProbabilityMap, InferenceRequest],
                     "BackendReading"]

#: Shared default request (immutable, so one instance serves everyone).
_DEFAULT_REQUEST = InferenceRequest()


class BackendReading:
    """One backend's answer: the value and (for sampling) its error.

    Satisfies the :class:`repro.inference.estimate.Estimate` protocol
    (``value`` / ``stderr`` / ``exact`` / ``interval()``).
    """

    __slots__ = ("backend", "value", "stderr", "exact")

    def __init__(self, backend: str, value: float,
                 stderr: Optional[float] = None,
                 exact: bool = True) -> None:
        self.backend = backend
        self.value = value
        self.stderr = stderr
        self.exact = exact

    @property
    def value_clamped(self) -> float:
        """The value clamped into [0, 1] (unbiased estimators can exceed 1)."""
        return min(1.0, max(0.0, self.value))

    def interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Estimate-protocol interval: degenerate for exact readings,
        a normal-approximation CI for sampling ones."""
        if self.stderr is None:
            return (self.value, self.value)
        spread = z * self.stderr
        return (max(0.0, self.value - spread),
                min(1.0, self.value + spread))

    def to_dict(self) -> dict:
        document: Dict[str, object] = {
            "backend": self.backend,
            "value": self.value,
            "exact": self.exact,
        }
        if self.stderr is not None:
            document["stderr"] = self.stderr
        return document

    def __repr__(self) -> str:
        if self.exact:
            return "BackendReading(%s, %.12f)" % (self.backend, self.value)
        return "BackendReading(%s, %.6f ± %.6f)" % (
            self.backend, self.value, self.stderr or 0.0)


def _adapt_backend_fn(fn: Callable, name: str) -> BackendFn:
    """Coerce ``fn`` to the request convention.

    New-style functions — ``(polynomial, probabilities, request)`` — pass
    through untouched.  Legacy four-positional-argument functions
    ``(polynomial, probabilities, samples, seed)`` are wrapped (the shim
    unpacks the request) and a :class:`DeprecationWarning` is emitted at
    adaptation time.  ``*args`` signatures are assumed new-style.
    """
    try:
        parameters = [
            p for p in inspect.signature(fn).parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        has_var_positional = any(
            p.kind == p.VAR_POSITIONAL
            for p in inspect.signature(fn).parameters.values())
    except (TypeError, ValueError):
        return fn  # uninspectable: trust the caller
    if has_var_positional or len(parameters) != 4:
        return fn
    warnings.warn(
        "Backend function for %r uses the legacy (polynomial, "
        "probabilities, samples, seed) signature; migrate to "
        "(polynomial, probabilities, request) taking an InferenceRequest"
        % name,
        DeprecationWarning, stacklevel=3)

    def legacy_shim(polynomial: Polynomial, probabilities: ProbabilityMap,
                    request: InferenceRequest) -> "BackendReading":
        return fn(polynomial, probabilities, request.samples, request.seed)

    legacy_shim.__name__ = getattr(fn, "__name__", "legacy_backend")
    return legacy_shim


class InferenceBackend:
    """One registered way to compute P[λ], with a uniform signature."""

    __slots__ = ("name", "kind", "description", "_fn", "_supports",
                 "_metric_handles")

    KIND_EXACT = "exact"
    KIND_SAMPLING = "sampling"

    def __init__(self, name: str, kind: str, fn: Callable,
                 supports: Optional[Callable[[Polynomial], bool]] = None,
                 description: str = "") -> None:
        if kind not in (self.KIND_EXACT, self.KIND_SAMPLING):
            raise ValueError(
                "Backend kind must be 'exact' or 'sampling': %r" % kind)
        self.name = name
        self.kind = kind
        self.description = description
        self._fn = _adapt_backend_fn(fn, name)
        self._supports = supports
        # (runtime, handles) pair; rebuilt when telemetry.configure swaps
        # the runtime object (identity check — see _bound_metrics).
        self._metric_handles: Tuple[object, object] = (None, None)

    @property
    def deterministic(self) -> bool:
        """Does the result depend only on (polynomial, probabilities)?"""
        return self.kind == self.KIND_EXACT

    def supports(self, polynomial: Polynomial) -> bool:
        """Can this backend evaluate the given polynomial?"""
        if self._supports is None:
            return True
        return self._supports(polynomial)

    def _bound_metrics(self, rt: "telemetry.TelemetryRuntime"):
        """Per-backend bound metric handles, cached per runtime.

        The registry's metrics used to be re-looked-up (name → metric →
        label-key validation → lock) on every single backend call; bound
        handles make the hot path one cached attribute read plus the
        series increment.
        """
        cached_rt, handles = self._metric_handles
        if cached_rt is rt:
            return handles
        handles = (
            rt.metrics.histogram(
                "p3_infer_seconds",
                help="Inference latency per backend call",
                labelnames=("backend",)).labels(backend=self.name),
            rt.metrics.counter(
                "p3_infer_calls_total", help="Backend invocations",
                labelnames=("backend",)).labels(backend=self.name),
            rt.metrics.counter(
                "p3_infer_samples_total",
                help="Monte-Carlo samples drawn, by backend",
                labelnames=("backend",)).labels(backend=self.name),
        )
        self._metric_handles = (rt, handles)
        return handles

    def run(self, polynomial: Polynomial, probabilities: ProbabilityMap,
            request: Optional[InferenceRequest] = None,
            samples: Optional[int] = None,
            seed: Optional[int] = None) -> BackendReading:
        """Evaluate P[λ] and return a :class:`BackendReading`.

        ``request`` is the one typed parameter object all backends share
        (:class:`~repro.inference.request.InferenceRequest`).  The legacy
        ``samples=`` / ``seed=`` keywords still work but emit
        :class:`DeprecationWarning`; an integer passed positionally where
        ``request`` now sits is treated as the legacy ``samples``.

        With telemetry enabled, every call produces an ``infer.backend``
        span (backend name, polynomial size, sample budget, value, and —
        for sampling backends — standard error) and feeds the
        per-backend ``p3_infer_seconds`` latency histogram plus the
        ``p3_infer_calls_total`` / ``p3_infer_samples_total`` counters.
        """
        if isinstance(request, int):
            # backend.run(poly, probs, 5000[, seed]) — the legacy
            # positional form.
            samples, request = request, None
        if samples is not None or seed is not None:
            warnings.warn(
                "backend.run(samples=..., seed=...) is deprecated; pass "
                "request=InferenceRequest(samples=..., seed=...) instead",
                DeprecationWarning, stacklevel=2)
            base = request if request is not None else _DEFAULT_REQUEST
            changes: Dict[str, object] = {}
            if samples is not None:
                changes["samples"] = samples
            if seed is not None:
                changes["seed"] = seed
            request = base.replace(**changes)
        elif request is None:
            request = _DEFAULT_REQUEST

        if request.budget is not None and active_meter() is None:
            scope = activate_budget(request.budget)
        else:
            scope = contextlib.nullcontext()

        rt = telemetry.runtime()
        if not rt.enabled:
            with scope:
                return self._fn(polynomial, probabilities, request)
        sampling = self.kind == self.KIND_SAMPLING
        with rt.tracer.span("infer.backend", backend=self.name,
                            kind=self.kind,
                            monomials=len(polynomial)) as span:
            started = time.perf_counter()
            with scope:
                reading = self._fn(polynomial, probabilities, request)
            elapsed = time.perf_counter() - started
            span.set_attribute("value", reading.value)
            if sampling:
                span.set_attribute("samples", request.samples)
                if reading.stderr is not None:
                    span.set_attribute("stderr", reading.stderr)
        latency, calls, drawn = self._bound_metrics(rt)
        latency.observe(elapsed)
        calls.inc()
        if sampling:
            drawn.inc(request.samples)
        return reading

    def __repr__(self) -> str:
        return "InferenceBackend(%r, %s)" % (self.name, self.kind)


_REGISTRY: Dict[str, InferenceBackend] = {}


def register_backend(backend: InferenceBackend,
                     replace: bool = False) -> InferenceBackend:
    """Add a backend to the registry (``replace=True`` to overwrite)."""
    if backend.name in _REGISTRY and not replace:
        raise ValueError("Backend %r is already registered" % backend.name)
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> InferenceBackend:
    """Look a backend up by name; raises ``ValueError`` when unknown."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            "Unknown probability method %r (expected one of %s)"
            % (name, ", ".join(backend_names())))
    return backend


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def exact_backend_names() -> Tuple[str, ...]:
    """Names of the registered exact backends, sorted."""
    return tuple(sorted(
        name for name, backend in _REGISTRY.items()
        if backend.kind == InferenceBackend.KIND_EXACT))


def sampling_backend_names() -> Tuple[str, ...]:
    """Names of the registered sampling backends, sorted."""
    return tuple(sorted(
        name for name, backend in _REGISTRY.items()
        if backend.kind == InferenceBackend.KIND_SAMPLING))


def available_backends(polynomial: Optional[Polynomial] = None,
                       names: Optional[List[str]] = None
                       ) -> List[InferenceBackend]:
    """Backends (optionally a named subset) applicable to ``polynomial``."""
    selected = [get_backend(name) for name in names] if names is not None \
        else [_REGISTRY[name] for name in backend_names()]
    if polynomial is None:
        return selected
    return [backend for backend in selected if backend.supports(polynomial)]


def is_deterministic(name: str) -> bool:
    """Is ``name`` a registered backend whose result ignores samples/seed?

    Unknown names answer ``False`` (the conservative choice for cache-key
    construction: unrecognised methods keep their sampling parameters).
    """
    backend = _REGISTRY.get(name)
    return backend is not None and backend.deterministic


@contextlib.contextmanager
def override_backend(name: str, fn: Callable) -> Iterator[InferenceBackend]:
    """Temporarily replace a backend's implementation.

    Exists for fault injection: the audit harness's own test suite swaps a
    known bug in (e.g. the historical Karp–Luby clamp) and asserts the
    differential oracle catches it.  The original backend is restored on
    exit no matter what.  ``fn`` follows the request convention
    ``(polynomial, probabilities, request)``; legacy four-argument
    functions are adapted with a :class:`DeprecationWarning`.
    """
    original = get_backend(name)
    replacement = InferenceBackend(
        name, original.kind, fn, supports=original._supports,
        description="override of %s" % name)
    _REGISTRY[name] = replacement
    try:
        yield replacement
    finally:
        _REGISTRY[name] = original


# -- built-in backends ---------------------------------------------------------

def _run_brute_force(polynomial: Polynomial, probabilities: ProbabilityMap,
                     request: InferenceRequest) -> BackendReading:
    return BackendReading(
        "brute-force", brute_force_probability(polynomial, probabilities))


def _run_exact(polynomial: Polynomial, probabilities: ProbabilityMap,
               request: InferenceRequest) -> BackendReading:
    return BackendReading(
        "exact", exact_probability(polynomial, probabilities))


def _run_bdd(polynomial: Polynomial, probabilities: ProbabilityMap,
             request: InferenceRequest) -> BackendReading:
    return BackendReading(
        "bdd", bdd_probability(polynomial, probabilities))


def _run_read_once(polynomial: Polynomial, probabilities: ProbabilityMap,
                   request: InferenceRequest) -> BackendReading:
    return BackendReading(
        "read-once", read_once_probability(polynomial, probabilities))


def _run_mc(polynomial: Polynomial, probabilities: ProbabilityMap,
            request: InferenceRequest) -> BackendReading:
    estimate = kernel_probability(
        polynomial, probabilities, samples=request.samples,
        seed=request.seed, deadline=request.deadline)
    return BackendReading(
        "mc", estimate.value, stderr=estimate.standard_error, exact=False)


def _run_parallel(polynomial: Polynomial, probabilities: ProbabilityMap,
                  request: InferenceRequest) -> BackendReading:
    estimate = kernel_probability(
        polynomial, probabilities, samples=request.samples,
        seed=request.seed, workers=request.workers,
        deadline=request.deadline)
    return BackendReading(
        "parallel", estimate.value, stderr=estimate.standard_error,
        exact=False)


def _run_karp_luby(polynomial: Polynomial, probabilities: ProbabilityMap,
                   request: InferenceRequest) -> BackendReading:
    estimate = kernel_karp_luby(
        polynomial, probabilities, samples=request.samples,
        seed=request.seed, workers=request.workers,
        deadline=request.deadline)
    return BackendReading(
        "karp-luby", estimate.value, stderr=estimate.standard_error,
        exact=False)


def _small_enough_for_brute_force(polynomial: Polynomial) -> bool:
    return len(polynomial.literals()) <= BRUTE_FORCE_LITERAL_LIMIT


register_backend(InferenceBackend(
    "brute-force", InferenceBackend.KIND_EXACT, _run_brute_force,
    supports=_small_enough_for_brute_force,
    description="2^n assignment enumeration (test oracle)"))
register_backend(InferenceBackend(
    "exact", InferenceBackend.KIND_EXACT, _run_exact,
    description="memoised Shannon expansion"))
register_backend(InferenceBackend(
    "bdd", InferenceBackend.KIND_EXACT, _run_bdd,
    description="ROBDD compile + weighted model count"))
register_backend(InferenceBackend(
    "read-once", InferenceBackend.KIND_EXACT, _run_read_once,
    supports=is_read_once,
    description="linear-time over a read-once factorization"))
register_backend(InferenceBackend(
    "mc", InferenceBackend.KIND_SAMPLING, _run_mc,
    description="bitset-kernel Monte-Carlo (single stream)"))
register_backend(InferenceBackend(
    "parallel", InferenceBackend.KIND_SAMPLING, _run_parallel,
    description="bitset-kernel Monte-Carlo (worker-sharded)"))
register_backend(InferenceBackend(
    "karp-luby", InferenceBackend.KIND_SAMPLING, _run_karp_luby,
    description="Karp-Luby union sampler (unbiased)"))
