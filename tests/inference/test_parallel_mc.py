"""Unit tests for the vectorized Monte-Carlo backend."""

import numpy as np
import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.inference.parallel_mc import (
    CompiledPolynomial,
    parallel_conditioned_pair,
    parallel_probability,
)
from repro.provenance.polynomial import Polynomial, tuple_literal

A = tuple_literal("a")
B = tuple_literal("b")


class TestCompiledPolynomial:
    def test_variable_count(self):
        poly = make_polynomial(("a", "b"), ("c",))
        compiled = CompiledPolynomial(poly)
        assert compiled.variable_count == 3

    def test_index_stable_and_sorted(self):
        poly = make_polynomial(("b", "a"))
        compiled = CompiledPolynomial(poly)
        assert compiled.literals == sorted(poly.literals())
        assert compiled.index_of(compiled.literals[0]) == 0

    def test_probability_vector_order(self):
        poly = make_polynomial(("a", "b"))
        compiled = CompiledPolynomial(poly)
        probs = {A: 0.25, B: 0.75}
        vector = compiled.probability_vector(probs)
        assert vector[compiled.index_of(A)] == 0.25
        assert vector[compiled.index_of(B)] == 0.75

    def test_evaluate_matrix_matches_python(self):
        poly = make_polynomial(("a", "b"), ("c",))
        compiled = CompiledPolynomial(poly)
        literals = compiled.literals
        rows = np.array([
            [True, True, False],
            [False, False, True],
            [True, False, False],
            [False, False, False],
        ])
        expected = [
            poly.evaluate(dict(zip(literals, row))) for row in rows
        ]
        assert list(compiled.evaluate_matrix(rows)) == expected

    def test_true_polynomial_rows_all_satisfied(self):
        compiled = CompiledPolynomial(Polynomial.one())
        matrix = np.zeros((4, 0), dtype=bool)
        assert compiled.evaluate_matrix(matrix).all()


class TestParallelProbability:
    def test_terminal_polynomials(self):
        assert parallel_probability(Polynomial.zero(), {}, 10).value == 0.0
        assert parallel_probability(Polynomial.one(), {}, 10).value == 1.0

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            parallel_probability(Polynomial.of([A]), {A: 0.5}, samples=-1)

    def test_seed_reproducible(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly)
        first = parallel_probability(poly, probs, 1000, seed=42)
        second = parallel_probability(poly, probs, 1000, seed=42)
        assert first.value == second.value

    def test_converges_to_exact(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=9)
        truth = exact_probability(poly, probs)
        estimate = parallel_probability(poly, probs, 60000, seed=1)
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= truth <= high

    def test_compiled_reuse(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly)
        compiled = CompiledPolynomial(poly)
        rng = np.random.default_rng(0)
        first = parallel_probability(
            poly, probs, 2000, rng=rng, compiled=compiled)
        second = parallel_probability(
            poly, probs, 2000, rng=rng, compiled=compiled)
        assert 0.0 <= first.value <= 1.0
        assert 0.0 <= second.value <= 1.0


class TestConditionedPair:
    def test_influence_estimate_matches_exact(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = {lit: 0.5 for lit in poly.literals()}
        high, low = parallel_conditioned_pair(
            poly, probs, A, samples=80000, seed=5)
        exact_high = exact_probability(poly.restrict(A, True), probs)
        exact_low = exact_probability(poly.restrict(A, False), probs)
        assert high.value == pytest.approx(exact_high, abs=0.01)
        assert low.value == pytest.approx(exact_low, abs=0.01)

    def test_counterfactual_literal(self):
        poly = make_polynomial(("a",))
        high, low = parallel_conditioned_pair(
            poly, {A: 0.5}, A, samples=100, seed=5)
        assert high.value == 1.0
        assert low.value == 0.0
