"""Declarative query specifications for the batch executor.

A :class:`QuerySpec` names one provenance query — its kind (Table 1 query
type or plain probability), target tuple key, and parameters — without
running anything.  Specs are plain values: hashable, comparable, and
round-trippable through dicts, so batches can arrive from JSON, be
deduplicated, and be used as cache keys.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

#: Query kinds understood by the executor.
KINDS = ("probability", "conditional", "explain", "derive", "influence",
         "modify")

#: Parameters accepted per kind (beyond the common method/hop_limit/
#: samples/seed).  Used for validation in ``__init__``.
_KIND_PARAMS = {
    "probability": frozenset(),
    "conditional": frozenset({"evidence"}),
    "explain": frozenset(),
    "derive": frozenset({"epsilon"}),
    "influence": frozenset({"top_k", "kind_filter", "relation"}),
    "modify": frozenset({"target", "strategy", "only_tuples", "only_rules",
                         "max_steps"}),
}

_COMMON_PARAMS = frozenset({"method", "hop_limit", "samples", "seed",
                            "timeout"})


class QuerySpec:
    """One query to run: ``kind`` + tuple ``key`` + keyword parameters.

    Use the per-kind constructors (:meth:`probability`, :meth:`explain`,
    :meth:`derive`, :meth:`influence`, :meth:`modify`,
    :meth:`conditional`) rather than ``__init__`` directly.
    """

    __slots__ = ("kind", "key", "params")

    def __init__(self, kind: str, key: str,
                 params: Optional[Dict[str, Any]] = None) -> None:
        if kind not in KINDS:
            raise ValueError(
                "Unknown query kind %r (expected one of %s)"
                % (kind, ", ".join(KINDS)))
        # Drop explicit Nones: a parameter passed as None means "use the
        # config default", exactly like not passing it at all — so the two
        # spellings must share one identity (and one cache entry).
        params = {name: value for name, value in (params or {}).items()
                  if value is not None}
        allowed = _COMMON_PARAMS | _KIND_PARAMS[kind]
        unknown = set(params) - allowed
        if unknown:
            raise ValueError(
                "Unknown parameters for %r spec: %s"
                % (kind, ", ".join(sorted(unknown))))
        if kind == "derive" and "epsilon" not in params:
            raise ValueError("derive specs require an 'epsilon' parameter")
        if kind == "modify":
            if "target" not in params:
                raise ValueError("modify specs require a 'target' parameter")
            if params.get("only_tuples") and params.get("only_rules"):
                raise ValueError(
                    "only_tuples and only_rules are mutually exclusive: "
                    "together they leave nothing modifiable")
        self.kind = kind
        self.key = key
        self.params = params

    # -- per-kind constructors ----------------------------------------------------

    @classmethod
    def probability(cls, key: str, **params: Any) -> "QuerySpec":
        """Success probability P[tuple]."""
        return cls("probability", key, params)

    @classmethod
    def conditional(cls, key: str,
                    evidence: Optional[Dict[str, bool]] = None,
                    **params: Any) -> "QuerySpec":
        """P[tuple | evidence] (program evidence plus per-spec extras)."""
        if evidence is not None:
            params["evidence"] = dict(evidence)
        return cls("conditional", key, params)

    @classmethod
    def explain(cls, key: str, **params: Any) -> "QuerySpec":
        """Explanation Query (Section 4.1)."""
        return cls("explain", key, params)

    @classmethod
    def derive(cls, key: str, epsilon: float, **params: Any) -> "QuerySpec":
        """Derivation Query (Section 4.2): ε-sufficient provenance."""
        params["epsilon"] = epsilon
        return cls("derive", key, params)

    @classmethod
    def influence(cls, key: str, **params: Any) -> "QuerySpec":
        """Influence Query (Section 4.3)."""
        return cls("influence", key, params)

    @classmethod
    def modify(cls, key: str, target: float, **params: Any) -> "QuerySpec":
        """Modification Query (Section 4.4)."""
        params["target"] = target
        return cls("modify", key, params)

    # -- identity ----------------------------------------------------------------

    def cache_identity(self) -> Hashable:
        """Canonical hashable identity: equal specs share cached results.

        ``timeout`` is excluded — a deadline bounds how long a query may
        run, never what it answers, so specs differing only in timeout
        share one result.
        """
        return (self.kind, self.key, _freeze(
            {name: value for name, value in self.params.items()
             if name != "timeout"}))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, QuerySpec)
                and self.cache_identity() == other.cache_identity())

    def __hash__(self) -> int:
        return hash(self.cache_identity())

    # -- dict round trip -----------------------------------------------------------

    def to_dict(self) -> dict:
        document: Dict[str, Any] = {"kind": self.kind, "key": self.key}
        if self.params:
            document["params"] = dict(self.params)
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "QuerySpec":
        """Parse ``{"kind": ..., "key": ..., "params": {...}}``.

        A bare string is also accepted and means a probability query.
        """
        if isinstance(document, str):
            return cls("probability", document)
        return cls(document["kind"], document["key"],
                   document.get("params"))

    @classmethod
    def coerce(cls, value: object) -> "QuerySpec":
        """Normalise str / dict / QuerySpec inputs into a QuerySpec."""
        if isinstance(value, QuerySpec):
            return value
        if isinstance(value, str):
            return cls("probability", value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(
            "Cannot interpret %r as a query spec" % (value,))

    def __repr__(self) -> str:
        extras = ", ".join(
            "%s=%r" % (name, self.params[name]) for name in sorted(self.params))
        return "QuerySpec(%s, %r%s)" % (
            self.kind, self.key, (", " + extras) if extras else "")


def _freeze(value: Any) -> Hashable:
    """Recursively convert dicts/lists to hashable tuples."""
    if isinstance(value, dict):
        return tuple(sorted(
            (name, _freeze(entry)) for name, entry in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(
            value, (set, frozenset)) else value
        return tuple(_freeze(entry) for entry in items)
    return value
