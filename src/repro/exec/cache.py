"""A bounded, thread-safe LRU cache with observability counters.

The executor layers two of these over the inference pipeline: one for
extracted provenance polynomials (keyed on ``(tuple key, hop_limit)``) and
one for probability results (keyed on
``(tuple key, hop_limit, method, samples, seed)``).  Worker threads share
both, so every operation holds an internal lock; the critical sections are
dict/move-to-end operations, never user computation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, Optional, Tuple

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping bounded to ``maxsize`` entries.

    ``maxsize=None`` means unbounded (the counters still work).  Lookups
    promote entries to most-recently-used; insertion past capacity evicts
    the least-recently-used entry.
    """

    def __init__(self, maxsize: Optional[int] = 1024) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive or None")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core mapping operations ------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (promoting it) or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Hashable,
                       factory: Callable[[], Any]) -> Any:
        """Cached value for ``key``, computing and storing it on a miss.

        ``factory`` runs outside the lock, so a concurrent miss on the same
        key may compute twice; the result is identical either way and the
        second put is a cheap refresh.  (Queries are deduplicated upstream
        by the executor, so double computes are rare in practice.)
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Membership test does not promote and does not count as a hit.
        with self._lock:
            return key in self._data

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data.keys()))

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 before the first lookup."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def counters(self) -> Tuple[int, int, int]:
        """(hits, misses, evictions) as one consistent snapshot."""
        with self._lock:
            return self._hits, self._misses, self._evictions

    def stats(self) -> dict:
        """Counter snapshot as a JSON-friendly dict."""
        hits, misses, evictions = self.counters()
        total = hits + misses
        return {
            "size": len(self),
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": hits / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return "LRUCache(%d/%s entries, %d hits, %d misses)" % (
            len(self), self.maxsize, self._hits, self._misses)
