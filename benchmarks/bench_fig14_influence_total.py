"""Figure 14 — total influence-query time on sufficient provenance.

For every error limit: time to compute the sufficient provenance (the
preprocessing step) plus the total time to compute influence for all its
literals.  The paper observes an order-of-magnitude total-time reduction
around the 2% error limit while the top influential literals stay intact
(Figure 12).
"""

import time

from repro.inference.parallel_mc import parallel_probability
from repro.queries.derivation import derivation_query
from repro.queries.influence import influence_query

from reporting import record_table
from workloads import query_workload

SAMPLES = 10000
ERRORS = [0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.08, 0.10]


def test_fig14_total_influence_time(benchmark):
    p3, key, poly = query_workload()
    probabilities = p3.probabilities
    probability = parallel_probability(
        poly, probabilities, samples=SAMPLES, seed=1).value

    rows = []
    totals = {}
    for fraction in ERRORS:
        epsilon = fraction * probability
        start = time.perf_counter()
        sufficient = derivation_query(
            poly, probabilities, epsilon, method="naive-mc").sufficient
        lineage_time = time.perf_counter() - start

        start = time.perf_counter()
        influence_query(sufficient, probabilities, method="parallel",
                        samples=SAMPLES, seed=1)
        influence_time = time.perf_counter() - start

        total = lineage_time + influence_time
        totals[fraction] = total
        rows.append(["%.1f%%" % (100 * fraction), len(sufficient),
                     1000 * lineage_time, 1000 * influence_time,
                     1000 * total])

    record_table(
        "fig14_influence_total",
        "Figure 14: total influence-query time with sufficient-provenance "
        "preprocessing (query %s)" % key,
        ["approx. error (% of P)", "dnf size", "sufficient time (ms)",
         "influence time (ms)", "total (ms)"],
        rows,
    )

    # Shape: allowing approximation cuts the total time substantially; by
    # 10% error the cut exceeds 2x (the sufficient-provenance step itself
    # has a fixed sampling cost, which bounds the asymptote).
    assert totals[0.02] < totals[0.0]
    assert totals[0.10] < totals[0.0] / 2
    assert totals[0.10] <= totals[0.001]

    benchmark.pedantic(
        lambda: influence_query(
            derivation_query(poly, probabilities, 0.02 * probability,
                             method="naive-mc").sufficient,
            probabilities, method="parallel", samples=2000, seed=1),
        rounds=2, iterations=1)
