"""Query-directed grounding vs full evaluation (the grounding tentpole).

Two tiers:

comparison   a 100-node BFS sample small enough to run full evaluation
             side by side — query-directed grounding must answer the same
             single-pair query at least 10x faster while materialising at
             least 10x fewer grounded tuples, with exact (byte-identical)
             probability parity.

full graph   the whole 35,592-edge Bitcoin-OTC-style network, where full
             evaluation is intractable in this process.  Single-pair
             trust queries must complete under the default budgets via
             ``grounding="query"``; a full-evaluation run capped at 10x
             the query-directed tuple count must blow through the cap,
             which is the machine-checkable form of the "10x fewer
             tuples" claim at a scale where the full count cannot be
             measured directly.

Both tiers write one machine-readable summary
(``results/BENCH_grounding.json``) for the CI guardrail to assert on.
"""

import time

import pytest

from repro import P3, P3Config
from repro.datalog.engine import EvaluationError

from reporting import record_json, record_table
from workloads import (
    MAINTENANCE_HOP_LIMIT,
    bfs_sample,
    full_graph_program,
    full_graph_trust_pairs,
)

SAMPLE_NODES = 100
SAMPLE_SEED = 7
FULL_GRAPH_PAIRS = 3

#: Cumulative results; the last test to run persists the final document.
RESULTS = {}


def _persist():
    record_json("BENCH_grounding", RESULTS)


def test_query_directed_speedup_and_tuple_ratio():
    sample = bfs_sample(SAMPLE_NODES, seed=SAMPLE_SEED)
    src, dst = sorted(sample.edges)[0]
    key = "trustPath(%d,%d)" % (src, dst)

    full = P3(sample.to_program(),
              P3Config(hop_limit=MAINTENANCE_HOP_LIMIT))
    start = time.perf_counter()
    result = full.evaluate()
    full_probability = full.probability_of(key)
    full_seconds = time.perf_counter() - start
    full_tuples = result.database.count()

    directed = P3(sample.to_program(),
                  P3Config(hop_limit=MAINTENANCE_HOP_LIMIT,
                           grounding="query"))
    start = time.perf_counter()
    directed.evaluate()
    directed_probability = directed.probability_of(key)
    directed_seconds = time.perf_counter() - start
    stats = directed.grounding_planner.stats
    directed_tuples = stats["derived_rows"] + len(sample.edges)

    assert directed_probability == full_probability, \
        "query-directed probability diverged from full evaluation"
    assert directed.polynomial_of(key) == full.polynomial_of(key)
    assert stats["fallbacks"] == 0

    speedup = full_seconds / max(directed_seconds, 1e-9)
    tuple_ratio = full_tuples / max(directed_tuples, 1)
    assert speedup >= 10.0, (
        "query-directed grounding should be >=10x faster on the "
        "comparison sample (got %.1fx)" % speedup)
    assert tuple_ratio >= 10.0, (
        "query-directed grounding should materialise >=10x fewer "
        "tuples (got %.1fx)" % tuple_ratio)

    record_table(
        "grounding_comparison",
        "Query-directed vs full grounding: single-pair trust query, "
        "%d-node BFS sample, hop limit %d"
        % (SAMPLE_NODES, MAINTENANCE_HOP_LIMIT),
        ["mode", "seconds", "grounded tuples"],
        [
            ["full evaluation", full_seconds, full_tuples],
            ["query-directed", directed_seconds, directed_tuples],
        ],
    )
    RESULTS.update({
        "sample_nodes": SAMPLE_NODES,
        "sample_edges": len(sample.edges),
        "hop_limit": MAINTENANCE_HOP_LIMIT,
        "full_seconds": full_seconds,
        "full_tuples": full_tuples,
        "query_seconds": directed_seconds,
        "query_tuples": directed_tuples,
        "speedup": speedup,
        "tuple_ratio": tuple_ratio,
    })
    _persist()


def test_full_graph_single_pair_queries():
    program = full_graph_program()
    pairs = full_graph_trust_pairs(count=FULL_GRAPH_PAIRS)
    directed = P3(program, P3Config(hop_limit=MAINTENANCE_HOP_LIMIT,
                                    grounding="query"))
    directed.evaluate()

    per_query = []
    for src, dst in pairs:
        key = "trustPath(%d,%d)" % (src, dst)
        start = time.perf_counter()
        probability = directed.probability_of(key)
        seconds = time.perf_counter() - start
        assert 0.0 < probability <= 1.0
        per_query.append({"key": key, "seconds": seconds,
                          "probability": probability})

    stats = directed.grounding_planner.stats
    assert stats["fallbacks"] == 0
    assert stats["goals"] == len(pairs)

    # The 10x-fewer-tuples claim at full scale: full evaluation capped at
    # 10x the query-directed tuple count must hit the ceiling long before
    # reaching a fixpoint (the uncapped full closure is intractable here).
    base_facts = len(program.facts)
    query_tuples = stats["derived_rows"] + base_facts
    cap = 10 * query_tuples
    capped = P3(program, P3Config(hop_limit=MAINTENANCE_HOP_LIMIT,
                                  max_tuples=cap))
    with pytest.raises(EvaluationError, match="max_tuples"):
        capped.evaluate()

    record_table(
        "grounding_full_graph",
        "Single-pair trust queries on the full %d-edge network "
        "(query-directed, hop limit %d)"
        % (base_facts, MAINTENANCE_HOP_LIMIT),
        ["query", "seconds", "probability"],
        [[entry["key"], entry["seconds"], entry["probability"]]
         for entry in per_query],
    )
    RESULTS.update({
        "full_graph_edges": base_facts,
        "full_graph_queries": per_query,
        "full_graph_query_tuples": query_tuples,
        "full_graph_capped_tuples": cap,
        "full_graph_cap_exceeded": True,
        "full_graph_seconds": sum(e["seconds"] for e in per_query),
    })
    _persist()
