"""Unit tests for QuerySpec — identity, validation, round trips."""

import pytest

from repro.exec.specs import KINDS, QuerySpec


class TestConstruction:
    def test_kinds_constant(self):
        assert set(KINDS) == {"probability", "conditional", "explain",
                              "derive", "influence", "modify"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="Unknown query kind"):
            QuerySpec("frobnicate", "a(1)")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="Unknown parameters"):
            QuerySpec("probability", "a(1)", {"epsilon": 0.1})

    def test_derive_requires_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            QuerySpec("derive", "a(1)")
        spec = QuerySpec.derive("a(1)", 0.05)
        assert spec.params["epsilon"] == 0.05

    def test_modify_requires_target(self):
        with pytest.raises(ValueError, match="target"):
            QuerySpec("modify", "a(1)")
        spec = QuerySpec.modify("a(1)", 0.9, strategy="greedy")
        assert spec.params["target"] == 0.9

    def test_common_params_accepted_everywhere(self):
        for kind in KINDS:
            extra = {}
            if kind == "derive":
                extra["epsilon"] = 0.1
            if kind == "modify":
                extra["target"] = 0.5
            spec = QuerySpec(kind, "a(1)",
                             dict(method="exact", hop_limit=4, **extra))
            assert spec.params["method"] == "exact"


class TestIdentity:
    def test_equality_and_hash(self):
        first = QuerySpec.probability("a(1)", method="exact")
        second = QuerySpec.probability("a(1)", method="exact")
        third = QuerySpec.probability("a(1)", method="mc")
        assert first == second
        assert hash(first) == hash(second)
        assert first != third
        assert first != "a(1)"

    def test_set_dedupe(self):
        specs = {QuerySpec.probability("a(1)"),
                 QuerySpec.probability("a(1)"),
                 QuerySpec.explain("a(1)")}
        assert len(specs) == 2

    def test_cache_identity_freezes_nested(self):
        first = QuerySpec.conditional("a(1)", evidence={"b(1)": True,
                                                        "c(2)": False})
        second = QuerySpec.conditional("a(1)", evidence={"c(2)": False,
                                                         "b(1)": True})
        assert first.cache_identity() == second.cache_identity()
        hash(first.cache_identity())  # must be hashable

    def test_kind_distinguishes(self):
        assert (QuerySpec.probability("a(1)").cache_identity()
                != QuerySpec.explain("a(1)").cache_identity())


class TestRoundTrip:
    def test_to_from_dict(self):
        spec = QuerySpec.derive("a(1)", 0.05, method="naive")
        clone = QuerySpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_bare_dict_without_params(self):
        spec = QuerySpec.probability("a(1)")
        document = spec.to_dict()
        assert "params" not in document
        assert QuerySpec.from_dict(document) == spec

    def test_from_dict_accepts_string(self):
        assert QuerySpec.from_dict("a(1)") == QuerySpec.probability("a(1)")

    def test_coerce(self):
        spec = QuerySpec.explain("a(1)")
        assert QuerySpec.coerce(spec) is spec
        assert QuerySpec.coerce("a(1)").kind == "probability"
        assert QuerySpec.coerce(
            {"kind": "influence", "key": "a(1)"}).kind == "influence"
        with pytest.raises(TypeError):
            QuerySpec.coerce(42)

    def test_repr(self):
        text = repr(QuerySpec.modify("a(1)", 0.9))
        assert "modify" in text and "a(1)" in text and "0.9" in text
