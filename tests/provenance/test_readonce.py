"""Unit and property tests for read-once factorization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.inference.exact import brute_force_probability, exact_probability
from repro.provenance.polynomial import Monomial, Polynomial, tuple_literal
from repro.provenance.readonce import (
    NotReadOnceError,
    ReadOnceNode,
    decompose,
    is_read_once,
    read_once_influence,
    read_once_probability,
)

A, B, C, D, E = (tuple_literal(x) for x in "abcde")


class TestDecompose:
    def test_single_literal(self):
        tree = decompose(Polynomial.of([A]))
        assert tree.kind == ReadOnceNode.KIND_LEAF
        assert tree.literal == A

    def test_single_monomial_is_and(self):
        tree = decompose(Polynomial.of([A, B, C]))
        assert tree.kind == ReadOnceNode.KIND_AND
        assert tree.literals() == frozenset({A, B, C})

    def test_disjoint_union_is_or(self):
        tree = decompose(Polynomial.from_monomials([[A], [B]]))
        assert tree.kind == ReadOnceNode.KIND_OR

    def test_product_of_sums(self):
        # (a+b)·(c+d) expanded
        poly = Polynomial.from_monomials([[A, C], [A, D], [B, C], [B, D]])
        tree = decompose(poly)
        assert tree is not None
        assert tree.kind == ReadOnceNode.KIND_AND
        assert tree.to_polynomial() == poly

    def test_nested_structure(self):
        # a·(b + c·(d + e)) expanded
        poly = Polynomial.from_monomials([[A, B], [A, C, D], [A, C, E]])
        tree = decompose(poly)
        assert tree is not None
        assert tree.to_polynomial() == poly
        # Each literal appears exactly once in the tree.
        assert _leaf_count(tree) == 5

    def test_p4_not_read_once(self):
        # The classic obstruction: ab + bc + cd.
        poly = Polynomial.from_monomials([[A, B], [B, C], [C, D]])
        assert decompose(poly) is None
        assert not is_read_once(poly)

    def test_triangle_not_read_once(self):
        poly = Polynomial.from_monomials([[A, B], [B, C], [A, C]])
        assert decompose(poly) is None

    def test_constants_rejected(self):
        with pytest.raises(ValueError):
            decompose(Polynomial.zero())
        with pytest.raises(ValueError):
            decompose(Polynomial.one())

    def test_constants_are_trivially_read_once(self):
        assert is_read_once(Polynomial.zero())
        assert is_read_once(Polynomial.one())


def _leaf_count(node):
    if node.kind == ReadOnceNode.KIND_LEAF:
        return 1
    return sum(_leaf_count(child) for child in node.children)


class TestProbability:
    def test_matches_brute_force(self):
        poly = Polynomial.from_monomials([[A, C], [A, D], [B, C], [B, D]])
        probs = {A: 0.3, B: 0.4, C: 0.5, D: 0.6}
        assert read_once_probability(poly, probs) == pytest.approx(
            brute_force_probability(poly, probs))

    def test_terminals(self):
        assert read_once_probability(Polynomial.zero(), {}) == 0.0
        assert read_once_probability(Polynomial.one(), {}) == 1.0

    def test_raises_on_non_read_once(self):
        poly = Polynomial.from_monomials([[A, B], [B, C], [C, D]])
        with pytest.raises(NotReadOnceError):
            read_once_probability(poly, {A: .5, B: .5, C: .5, D: .5})


class TestInfluence:
    def test_matches_cofactor_definition(self):
        poly = Polynomial.from_monomials([[A, C], [A, D], [B, C], [B, D]])
        probs = {A: 0.3, B: 0.4, C: 0.5, D: 0.6}
        for literal in (A, B, C, D):
            expected = (
                exact_probability(poly.restrict(literal, True), probs)
                - exact_probability(poly.restrict(literal, False), probs))
            assert read_once_influence(poly, probs, literal) == pytest.approx(
                expected)

    def test_absent_literal_zero(self):
        poly = Polynomial.of([A])
        assert read_once_influence(poly, {A: 0.5, B: 0.5}, B) == 0.0

    def test_raises_on_non_read_once(self):
        poly = Polynomial.from_monomials([[A, B], [B, C], [C, D]])
        with pytest.raises(NotReadOnceError):
            read_once_influence(poly, {A: .5, B: .5, C: .5, D: .5}, A)


@st.composite
def read_once_trees(draw, literals=None, depth=0):
    """Generate genuine read-once trees, then expand to DNF."""
    if literals is None:
        count = draw(st.integers(min_value=1, max_value=6))
        pool = [tuple_literal("x%d" % i) for i in range(count)]
        literals = pool
    if len(literals) == 1 or depth >= 3:
        return ReadOnceNode(ReadOnceNode.KIND_LEAF, literal=literals[0])
    # Split the literal pool into 2..3 nonempty parts.
    parts = draw(st.integers(min_value=2, max_value=min(3, len(literals))))
    indices = sorted(draw(st.permutations(range(1, len(literals))))[:parts - 1])
    pieces = []
    start = 0
    for index in indices + [len(literals)]:
        pieces.append(literals[start:index])
        start = index
    children = [draw(read_once_trees(literals=piece, depth=depth + 1))
                for piece in pieces if piece]
    if len(children) == 1:
        return children[0]
    kind = draw(st.sampled_from(
        [ReadOnceNode.KIND_AND, ReadOnceNode.KIND_OR]))
    return ReadOnceNode(kind, children=children)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(read_once_trees())
    def test_decompose_recovers_read_once_inputs(self, tree):
        poly = tree.to_polynomial()
        if poly.is_zero or poly.is_one:
            return
        recovered = decompose(poly)
        assert recovered is not None
        assert recovered.to_polynomial() == poly

    @settings(max_examples=60, deadline=None)
    @given(read_once_trees(), st.integers(0, 2**16))
    def test_probability_matches_brute_force(self, tree, seed):
        import random
        poly = tree.to_polynomial()
        if poly.is_zero or poly.is_one:
            return
        rng = random.Random(seed)
        probs = {lit: round(rng.uniform(0.05, 0.95), 3)
                 for lit in poly.literals()}
        assert read_once_probability(poly, probs) == pytest.approx(
            brute_force_probability(poly, probs))

    @settings(max_examples=40, deadline=None)
    @given(read_once_trees())
    def test_each_literal_once(self, tree):
        poly = tree.to_polynomial()
        if poly.is_zero or poly.is_one:
            return
        recovered = decompose(poly)
        leaves = []

        def collect(node):
            if node.kind == ReadOnceNode.KIND_LEAF:
                leaves.append(node.literal)
            else:
                for child in node.children:
                    collect(child)

        collect(recovered)
        assert len(leaves) == len(set(leaves))
        assert set(leaves) == set(poly.literals())
