"""Unit tests for the Derivation Query (sufficient provenance)."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.queries.derivation import (
    derivation_query,
    find_match,
    match_probability,
)


class TestAcquaintanceNarrative:
    """Query 2 of the paper: epsilon controls which derivations survive."""

    def test_tiny_epsilon_keeps_both(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        result = derivation_query(
            poly, acquaintance.probabilities, epsilon=0.001)
        assert len(result.sufficient) == 2

    def test_larger_epsilon_keeps_the_strong_derivation(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        result = derivation_query(
            poly, acquaintance.probabilities, epsilon=0.05)
        assert len(result.sufficient) == 1
        # The surviving derivation is the live-in-same-city one (via r1).
        [monomial] = list(result.sufficient)
        assert any(lit.key == "r1" for lit in monomial.literals)

    def test_most_important_derivation(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        result = derivation_query(
            poly, acquaintance.probabilities, epsilon=0.0)
        [top] = result.most_important_derivations(
            acquaintance.probabilities, k=1)
        assert any(lit.key == "r1" for lit in top.literals)


class TestGuarantees:
    @pytest.mark.parametrize("method", ["naive", "match-group"])
    @pytest.mark.parametrize("epsilon", [0.0, 0.001, 0.01, 0.1, 0.5])
    def test_error_bound_respected(self, method, epsilon):
        poly = make_polynomial(
            ("a", "b"), ("b", "c"), ("c", "d"), ("e",), ("a", "f"))
        probs = random_probabilities(poly, seed=8)
        result = derivation_query(poly, probs, epsilon, method=method)
        assert result.error <= epsilon + 1e-12

    @pytest.mark.parametrize("method", ["naive", "match-group"])
    def test_sufficient_is_subset(self, method):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=2)
        result = derivation_query(poly, probs, 0.05, method=method)
        assert result.sufficient.monomials <= poly.monomials

    def test_probability_one_sided(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=2)
        result = derivation_query(poly, probs, 0.1)
        assert result.sufficient_probability <= result.full_probability + 1e-12

    def test_epsilon_zero_keeps_probability(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly, seed=1)
        result = derivation_query(poly, probs, 0.0)
        assert result.sufficient_probability == pytest.approx(
            result.full_probability)

    def test_huge_epsilon_compresses_to_one_monomial(self):
        poly = make_polynomial(("a",), ("b",), ("c",), ("d",))
        probs = {lit: 0.5 for lit in poly.literals()}
        result = derivation_query(poly, probs, epsilon=1.0)
        assert len(result.sufficient) == 1  # naive never empties completely

    def test_compression_monotone_in_epsilon(self):
        poly = make_polynomial(
            ("a", "b"), ("b", "c"), ("c", "d"), ("e",), ("a", "f"),
            ("b", "f"), ("c", "e"))
        probs = random_probabilities(poly, seed=5)
        sizes = [
            len(derivation_query(poly, probs, eps).sufficient)
            for eps in (0.001, 0.01, 0.1, 0.5)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_rejects_negative_epsilon(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ValueError):
            derivation_query(poly, {list(poly.literals())[0]: 0.5}, -0.1)

    def test_unknown_method(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ValueError):
            derivation_query(poly, {list(poly.literals())[0]: 0.5}, 0.1,
                             method="nope")

    def test_custom_evaluator_used(self):
        calls = []

        def spy(poly, probs):
            calls.append(len(poly))
            return exact_probability(poly, probs)

        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.5 for lit in poly.literals()}
        derivation_query(poly, probs, 0.01, evaluator=spy)
        assert calls  # evaluator actually invoked


class TestUnionBound:
    @pytest.mark.parametrize("epsilon", [0.0, 0.01, 0.1, 0.5])
    def test_error_bound_guaranteed(self, epsilon):
        poly = make_polynomial(
            ("a", "b"), ("b", "c"), ("c", "d"), ("e",), ("a", "f"))
        probs = random_probabilities(poly, seed=8)
        result = derivation_query(poly, probs, epsilon, method="union-bound")
        assert result.error <= epsilon + 1e-12

    def test_more_conservative_than_naive(self):
        poly = make_polynomial(
            ("a", "b"), ("a", "c"), ("a", "d"), ("e",))
        probs = {lit: 0.5 for lit in poly.literals()}
        naive = derivation_query(poly, probs, 0.2, method="naive")
        union = derivation_query(poly, probs, 0.2, method="union-bound")
        assert len(union.sufficient) >= len(naive.sufficient)

    def test_never_empties(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.01 for lit in poly.literals()}
        result = derivation_query(poly, probs, 1.0, method="union-bound")
        assert len(result.sufficient) >= 1


class TestNaiveMC:
    def test_error_within_mc_tolerance(self):
        poly = make_polynomial(
            ("a", "b"), ("b", "c"), ("c", "d"), ("e",), ("a", "f"))
        probs = random_probabilities(poly, seed=8)
        result = derivation_query(poly, probs, 0.05, method="naive-mc",
                                  samples=40000, seed=1)
        # Error measured with fresh samples; allow 3-sigma MC slack.
        assert result.error <= 0.05 + 3 * 0.0025

    def test_subset_of_original(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=2)
        result = derivation_query(poly, probs, 0.1, method="naive-mc",
                                  samples=5000, seed=1)
        assert result.sufficient.monomials <= poly.monomials

    def test_seeded_determinism(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",), ("e", "f"))
        probs = random_probabilities(poly, seed=4)
        first = derivation_query(poly, probs, 0.1, method="naive-mc", seed=9)
        second = derivation_query(poly, probs, 0.1, method="naive-mc", seed=9)
        assert first.sufficient == second.sufficient

    def test_single_monomial_untouched(self):
        poly = make_polynomial(("a", "b"))
        probs = {lit: 0.5 for lit in poly.literals()}
        result = derivation_query(poly, probs, 1.0, method="naive-mc")
        assert result.sufficient == poly

    def test_matches_naive_on_small_polynomial(self):
        # With plenty of samples the MC variant should drop the same
        # monomial as the exact naive method on the running example.
        poly = make_polynomial(("r1", "x", "y"), ("r2", "u", "v"))
        probs = {}
        for lit in poly.literals():
            probs[lit] = {"r1": 0.8, "x": 1.0, "y": 1.0,
                          "r2": 0.4, "u": 0.4, "v": 0.6}[lit.key]
        naive = derivation_query(poly, probs, 0.2, method="naive")
        mc = derivation_query(poly, probs, 0.2, method="naive-mc",
                              samples=50000, seed=1)
        assert mc.sufficient == naive.sufficient


class TestMatch:
    def test_match_monomials_disjoint(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",), ("e", "f"))
        probs = random_probabilities(poly, seed=3)
        match = find_match(poly, probs)
        seen = set()
        for monomial in match:
            assert seen.isdisjoint(monomial.literals)
            seen.update(monomial.literals)

    def test_match_prefers_probable_monomials(self):
        poly = make_polynomial(("a",), ("b",))
        probs_map = {lit: (0.9 if lit.key == "a" else 0.1)
                     for lit in poly.literals()}
        match = find_match(poly, probs_map)
        keys = {str(m) for m in match}
        assert "a" in keys

    def test_match_probability_closed_form(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.5 for lit in poly.literals()}
        match = find_match(poly, probs)
        assert match_probability(match, probs) == pytest.approx(
            exact_probability(match, probs))


class TestResultObject:
    def test_compression_ratio(self):
        poly = make_polynomial(("a",), ("b",), ("c",), ("d",))
        probs = {lit: 0.5 for lit in poly.literals()}
        result = derivation_query(poly, probs, epsilon=1.0)
        assert result.compression_ratio == pytest.approx(0.25)
        assert result.removed_count == 3

    def test_empty_polynomial(self):
        from repro.provenance.polynomial import Polynomial
        result = derivation_query(Polynomial.zero(), {}, 0.1)
        assert result.compression_ratio == 1.0
        assert result.full_probability == 0.0
