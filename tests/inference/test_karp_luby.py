"""Unit tests for the Karp–Luby DNF estimator."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.inference.karp_luby import karp_luby_probability, union_bound
from repro.provenance.polynomial import Polynomial, tuple_literal

A = tuple_literal("a")


class TestUnionBound:
    def test_sums_monomial_probabilities(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.3 for lit in poly.literals()}
        assert union_bound(poly, probs) == pytest.approx(0.6)

    def test_clipped_at_one(self):
        poly = make_polynomial(("a",), ("b",), ("c",))
        probs = {lit: 0.9 for lit in poly.literals()}
        assert union_bound(poly, probs) == 1.0

    def test_upper_bounds_exact(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=2)
        assert union_bound(poly, probs) >= exact_probability(poly, probs)


class TestEstimator:
    def test_terminal_polynomials(self):
        assert karp_luby_probability(Polynomial.zero(), {}, 10).value == 0.0
        assert karp_luby_probability(Polynomial.one(), {}, 10).value == 1.0

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            karp_luby_probability(Polynomial.of([A]), {A: 0.5}, samples=0)

    def test_zero_weight_polynomial(self):
        poly = make_polynomial(("a",))
        assert karp_luby_probability(poly, {A: 0.0}, 100).value == 0.0

    def test_seed_reproducible(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly)
        first = karp_luby_probability(poly, probs, 2000, seed=42)
        second = karp_luby_probability(poly, probs, 2000, seed=42)
        assert first.value == second.value

    def test_converges_to_exact(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("a", "c"))
        probs = random_probabilities(poly, seed=4)
        truth = exact_probability(poly, probs)
        estimate = karp_luby_probability(poly, probs, 60000, seed=13)
        assert estimate.value == pytest.approx(truth, abs=0.02)

    def test_low_probability_relative_accuracy(self):
        # The Karp–Luby selling point: tiny probabilities estimated with
        # small RELATIVE error, where naive MC would see ~0 hits.
        poly = make_polynomial(("a", "b", "c"))
        probs = {lit: 0.02 for lit in poly.literals()}
        truth = exact_probability(poly, probs)  # 8e-6
        estimate = karp_luby_probability(poly, probs, 50000, seed=3)
        assert estimate.value == pytest.approx(truth, rel=0.2)

    def test_single_monomial_exact_in_expectation(self):
        poly = make_polynomial(("a",))
        estimate = karp_luby_probability(poly, {A: 0.37}, 1000, seed=0)
        # With one monomial the chosen monomial is always first satisfier.
        assert estimate.value == pytest.approx(0.37)


class TestUnbiasedness:
    """Regression tests for the clamp bug: the estimator must stay
    unbiased (mean of independent estimates converges to the exact
    probability), which clamping at 1.0 silently destroyed."""

    # Eight disjoint monomials at p=0.9: union weight W=7.2 while the
    # true probability is ~1, so per-run estimates routinely exceed 1 —
    # exactly the regime the old clamp biased downward.
    POLY = make_polynomial(*[("m%d" % i,) for i in range(8)])
    PROBS = None  # filled lazily (literals need the polynomial)

    @classmethod
    def _fixture(cls):
        probs = {lit: 0.9 for lit in cls.POLY.literals()}
        return cls.POLY, probs, exact_probability(cls.POLY, probs)

    def _sweep(self, runs=300, samples=200):
        poly, probs, truth = self._fixture()
        estimates = [
            karp_luby_probability(poly, probs, samples=samples,
                                  seed=1000 + run)
            for run in range(runs)
        ]
        import math
        mean = sum(e.value for e in estimates) / runs
        se_mean = math.sqrt(
            sum(e.standard_error ** 2 for e in estimates) / runs
        ) / math.sqrt(runs)
        return estimates, mean, se_mean, truth

    def test_value_unclamped_and_scale_recorded(self):
        poly, probs, _ = self._fixture()
        estimate = karp_luby_probability(poly, probs, 200, seed=1004)
        assert estimate.scale == pytest.approx(7.2)
        assert estimate.value == pytest.approx(
            estimate.scale * estimate.hits / estimate.samples)

    def test_estimates_can_exceed_one_but_clamp_on_request(self):
        estimates, _, _, _ = self._sweep(runs=50)
        assert any(e.value > 1.0 for e in estimates)
        assert all(e.value_clamped <= 1.0 for e in estimates)

    def test_mean_of_estimates_matches_exact(self):
        _, mean, se_mean, truth = self._sweep()
        assert abs(mean - truth) <= 4 * se_mean

    def test_clamping_would_bias_the_mean(self):
        # The old bug, reproduced arithmetically: clamping each estimate
        # shifts the sweep mean far outside the sampling error band.  If
        # the clamp ever comes back, test_mean_of_estimates_matches_exact
        # fails exactly like this comparison.
        estimates, _, se_mean, truth = self._sweep()
        clamped_mean = sum(e.value_clamped for e in estimates) / len(estimates)
        assert truth - clamped_mean > 4 * se_mean

    def test_standard_error_scaled_by_union_weight(self):
        import math
        poly, probs, _ = self._fixture()
        estimate = karp_luby_probability(poly, probs, 500, seed=8)
        rate = estimate.hits / estimate.samples
        expected = estimate.scale * math.sqrt(
            rate * (1.0 - rate) / estimate.samples)
        assert estimate.standard_error == pytest.approx(expected)
        # A plain Bernoulli error (scale 1) would understate the error by
        # the full union weight.
        assert estimate.standard_error > math.sqrt(
            rate * (1.0 - rate) / estimate.samples)
