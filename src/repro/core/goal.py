"""Goal-directed querying: magic-set evaluation behind a friendly facade.

:func:`goal_directed_query` answers one query pattern without computing
the whole least model: the program is magic-transformed
(:mod:`repro.datalog.magic`), the specialised program is evaluated with
provenance, and the results are presented under the *original* relation
name with magic bookkeeping stripped from every polynomial — so the
answers, polynomials, and probabilities are interchangeable with those of
a full :class:`~repro.core.system.P3` evaluation (tested so).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..datalog.ast import Program
from ..datalog.engine import Engine
from ..datalog.magic import (
    MagicProgram,
    magic_transform,
    original_provenance_graph,
)
from ..datalog.terms import Atom, atom as make_atom
from ..inference import probability as compute_probability
from ..provenance.extraction import extract_polynomial
from ..provenance.graph import GraphBuilder, register_program
from ..provenance.polynomial import Literal, Polynomial
from .config import P3Config


class GoalDirectedResult:
    """Answers to one goal-directed query, in original-relation terms."""

    def __init__(self, magic: MagicProgram, pattern: Atom, graph, database,
                 probabilities, firing_count: int,
                 config: P3Config) -> None:
        self._magic = magic
        self._pattern = pattern
        self._graph = graph
        self._database = database
        self._probabilities = probabilities
        self.firing_count = firing_count
        self._config = config
        self._polynomials: Dict[str, Polynomial] = {}

    def answers(self) -> List[str]:
        """Ground tuples matching the query pattern, as original keys.

        The magic-evaluated model also contains auxiliary demanded tuples
        (sub-demands of the recursion); only tuples unifying with the
        original query pattern are answers.
        """
        adorned_pattern = Atom(self._magic.query_relation,
                               self._pattern.args)
        keys = {
            self._magic.original_key(
                str(adorned_pattern.substitute(subst)))
            for subst in self._database.match(adorned_pattern)
        }
        return sorted(keys)

    @property
    def graph(self):
        """The provenance graph, translated back to original terms.

        This is a subgraph of what full evaluation would have produced —
        restricted to derivations relevant to the query — so extraction,
        hop limits, and literals behave identically on it.
        """
        return self._graph

    def polynomial_of(self, original_key: str) -> Polynomial:
        """Provenance polynomial over original rule labels and tuple keys."""
        cached = self._polynomials.get(original_key)
        if cached is not None:
            return cached
        if original_key not in self._graph:
            raise KeyError(
                "Tuple %r was not derived by the goal-directed evaluation"
                % original_key)
        polynomial = extract_polynomial(
            self._graph, original_key,
            hop_limit=self._config.hop_limit,
            max_monomials=self._config.max_monomials)
        self._polynomials[original_key] = polynomial
        return polynomial

    def probability_of(self, original_key: str,
                       method: Optional[str] = None) -> float:
        """Success probability of one answer."""
        return compute_probability(
            self.polynomial_of(original_key), self._probabilities,
            method=method or self._config.probability_method,
            samples=self._config.samples, seed=self._config.seed)

    def __repr__(self) -> str:
        return "GoalDirectedResult(%s, %d answers, %d firings)" % (
            self._magic.query_relation, len(self.answers()),
            self.firing_count)


def goal_directed_query(program: Program, relation: str, *values: object,
                        pattern: Optional[Atom] = None,
                        config: Optional[P3Config] = None
                        ) -> GoalDirectedResult:
    """Magic-transform, evaluate, and wrap the answers.

    Use positional ``values`` for a fully-ground query, or pass a
    ``pattern`` atom containing variables for partially-bound queries
    (e.g. ``Atom("trustPath", (Constant(1), Variable("X")))``).
    """
    config = config or P3Config()
    if pattern is None:
        pattern = make_atom(relation, *values)  # type: ignore[arg-type]
    magic = magic_transform(program, pattern)
    builder = GraphBuilder()
    register_program(builder.graph, magic.program)
    result = Engine(
        magic.program, recorder=builder,
        capture_tables=config.capture_tables,
        max_rounds=config.max_rounds,
        max_tuples=config.max_tuples,
    ).run()

    cleaned = original_provenance_graph(builder.graph, magic)
    probabilities: Dict[Literal, float] = cleaned.probability_map()

    return GoalDirectedResult(
        magic, pattern, cleaned, result.database, probabilities,
        result.firing_count, config)
