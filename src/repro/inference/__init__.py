"""Probability backends for provenance polynomials.

Seven interchangeable methods, all taking ``(polynomial, probabilities)``
and all registered in :mod:`repro.inference.registry`:

===============  ==============================================  ==========
method           implementation                                  result
===============  ==============================================  ==========
``exact``        memoised Shannon expansion                      exact float
``bdd``          ROBDD compile + weighted model count            exact float
``brute-force``  2ⁿ enumeration (small polynomials; oracle)      exact float
``read-once``    linear pass over a read-once factorization      exact float
``mc``           sequential Monte-Carlo (paper's default)        estimate
``parallel``     numpy-vectorized Monte-Carlo (Table 8)          estimate
``karp-luby``    Karp–Luby union sampler [14]                    estimate
===============  ==============================================  ==========

:func:`probability` is the uniform front door used by the query layer; it
dispatches through the registry, which the differential audit harness
(:mod:`repro.audit`) also uses to cross-check every backend against every
other.
"""

from __future__ import annotations

from typing import Optional

from ..provenance.polynomial import Polynomial, ProbabilityMap
from .bdd import BDD, ONE, ZERO, bdd_probability, from_polynomial
from .bounded import BoundedResult, bounded_probability
from .exact import (
    ExactLimitError,
    brute_force_probability,
    exact_probability,
    monomial_probabilities,
)
from .karp_luby import karp_luby_probability, union_bound
from .montecarlo import (
    MonteCarloEstimate,
    adaptive_probability,
    conditioned_probability,
    monte_carlo_probability,
    sample_assignment,
)
from .parallel_mc import (
    CompiledPolynomial,
    batch_parallel_probability,
    parallel_conditioned_pair,
    parallel_probability,
)
from .registry import (
    BackendReading,
    InferenceBackend,
    available_backends,
    backend_names,
    exact_backend_names,
    get_backend,
    is_deterministic,
    register_backend,
    sampling_backend_names,
)

#: Methods accepted by :func:`probability` (the registered backend names).
METHODS = backend_names()


def probability(polynomial: Polynomial, probabilities: ProbabilityMap,
                method: str = "exact",
                samples: int = 10000,
                seed: Optional[int] = None) -> float:
    """Compute or estimate P[λ] with the chosen backend; returns a float.

    Dispatches through the backend registry.  Sampling backends return
    their clamped value (the unbiased Karp–Luby estimate can exceed 1,
    but this front door promises a probability); they also discard the
    error information — call the specific estimator directly, or
    :meth:`InferenceBackend.run`, when the standard error matters.
    """
    backend = get_backend(method)
    reading = backend.run(polynomial, probabilities,
                          samples=samples, seed=seed)
    if backend.deterministic:
        return reading.value
    return reading.value_clamped


__all__ = [
    "BDD",
    "BackendReading",
    "BoundedResult",
    "CompiledPolynomial",
    "ExactLimitError",
    "InferenceBackend",
    "METHODS",
    "MonteCarloEstimate",
    "ONE",
    "ZERO",
    "adaptive_probability",
    "available_backends",
    "backend_names",
    "bdd_probability",
    "bounded_probability",
    "brute_force_probability",
    "batch_parallel_probability",
    "conditioned_probability",
    "exact_backend_names",
    "exact_probability",
    "from_polynomial",
    "get_backend",
    "is_deterministic",
    "karp_luby_probability",
    "monomial_probabilities",
    "monte_carlo_probability",
    "parallel_conditioned_pair",
    "parallel_probability",
    "probability",
    "register_backend",
    "sample_assignment",
    "sampling_backend_names",
    "union_bound",
]
