"""Parser for the ProbLog-like surface syntax of Figure 1.

Accepted clause forms (all terminated by ``.``):

    r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1!=P2.
    t4 0.4: like("Steve","Veggies").
    0.8::know(P1,P2) :- live(P1,C).     % classic ProbLog label-free form
    edge(1,2).                          % plain Datalog (probability 1.0)

Identifiers starting with an upper-case letter (or ``_``) are variables;
everything else (quoted strings, numbers, lower-case identifiers) is a
constant.  Comments run from ``%``, ``#``, or ``//`` to end of line.
"""

from __future__ import annotations

import re
import sys
from typing import List, Optional, Tuple, Union

from ..core.errors import DepthLimitError
from .ast import Fact, Program, Rule
from .builtins import Comparison
from .terms import Atom, Constant, Term, Variable


class ParseError(ValueError):
    """Raised on malformed program text, with line/column context."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__("line %d, column %d: %s" % (line, column, message))
        self.line = line
        self.column = column


#: Relation-name prefix reserved for magic-set demand predicates
#: (:data:`repro.datalog.magic.MAGIC_PREFIX`).  Kept as a literal here so
#: the parser does not depend on the transform module.
RESERVED_RELATION_PREFIX = "m_"


class ReservedNameError(ParseError):
    """A clause used a relation name reserved for magic-set bookkeeping.

    ``m_``-prefixed relations are the demand predicates the magic-set
    transform (:mod:`repro.datalog.magic`) generates; a user program that
    defines one would collide with the rewrite and silently corrupt
    goal-directed provenance.  Rejected at parse time so the error points
    at the offending clause instead of surfacing mid-transform.
    """

    def __init__(self, name: str, line: int, column: int) -> None:
        super().__init__(
            "relation name %r is reserved: names starting with %r are "
            "magic-set demand predicates (rename the relation, e.g. %r)"
            % (name, RESERVED_RELATION_PREFIX,
               "my_" + name[len(RESERVED_RELATION_PREFIX):]),
            line, column)
        self.name = name


_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"%[^\n]*|#[^\n]*|//[^\n]*"),
    ("IMPLIES", r":-"),
    ("DCOLON", r"::"),
    ("NAF", r"\\\+"),
    ("NUMBER", r"\d+\.\d+(?:[eE][-+]?\d+)?|\d+(?:[eE][-+]?\d+)?|\.\d+"),
    ("STRING", r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\''),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("CMP", r"!=|==|<=|>=|<|>"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("COLON", r":"),
    ("DOT", r"\."),
    ("MINUS", r"-"),
]

_TOKEN_RE = re.compile("|".join("(?P<%s>%s)" % pair for pair in _TOKEN_SPEC))


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return "_Token(%r, %r, %d, %d)" % (self.kind, self.text, self.line, self.column)


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(
                "unexpected character %r" % source[pos], line, pos - line_start + 1
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, text, line, match.start() - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(_Token("EOF", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str, what: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                "expected %s, found %r" % (what, token.text or "end of input"),
                token.line, token.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self._peek().kind != "EOF":
            if not self._try_parse_directive(program):
                program.add(self._parse_clause())
        return program

    def _try_parse_directive(self, program: Program) -> bool:
        """Parse a ``query(atom).`` or ``evidence(atom[, truth]).`` directive.

        Directives are recognised by the shape ``query(`` / ``evidence(``
        followed by a nested atom; a plain relation named ``query`` (e.g.
        ``query(1,2).``) is left to normal clause parsing.
        """
        token = self._peek()
        is_directive = (
            token.kind == "IDENT"
            and token.text in ("query", "evidence")
            and self._peek(1).kind == "LPAREN"
            and self._peek(2).kind == "IDENT"
            and self._peek(3).kind == "LPAREN"
        )
        if not is_directive:
            return False
        name = self._advance().text
        self._expect("LPAREN", "'('")
        inner = self._parse_atom()
        if name == "query":
            self._expect("RPAREN", "')'")
            self._expect("DOT", "'.'")
            program.add_query(inner)
            return True
        observed = True
        if self._peek().kind == "COMMA":
            self._advance()
            truth_token = self._expect("IDENT", "'true' or 'false'")
            if truth_token.text == "true":
                observed = True
            elif truth_token.text == "false":
                observed = False
            else:
                raise ParseError(
                    "evidence truth value must be 'true' or 'false', "
                    "found %r" % truth_token.text,
                    truth_token.line, truth_token.column)
        self._expect("RPAREN", "')'")
        self._expect("DOT", "'.'")
        if not inner.is_ground:
            raise self._error("evidence atoms must be ground: %s" % inner)
        program.add_evidence(inner, observed)
        return True

    def _parse_clause(self) -> Union[Fact, Rule]:
        label, probability = self._parse_clause_prefix()
        head = self._parse_atom()
        if self._peek().kind == "IMPLIES":
            self._advance()
            body, constraints, negations = self._parse_body()
            self._expect("DOT", "'.'")
            try:
                return Rule(head, body, constraints, probability, label,
                            negations)
            except ValueError as exc:
                raise self._error(str(exc))
        self._expect("DOT", "'.'")
        try:
            return Fact(head, probability, label)
        except ValueError as exc:
            raise self._error(str(exc))

    def _parse_clause_prefix(self) -> Tuple[Optional[str], float]:
        """Parse the optional ``label prob:`` or ``prob::`` clause prefix."""
        token = self._peek()
        # Form: IDENT NUMBER ':'  (labelled, e.g. "r1 0.8:")
        if (token.kind == "IDENT" and self._peek(1).kind == "NUMBER"
                and self._peek(2).kind == "COLON"):
            label = self._advance().text
            probability = float(self._advance().text)
            self._advance()  # COLON
            return label, probability
        # Form: NUMBER '::'  (classic ProbLog, e.g. "0.8::")
        if token.kind == "NUMBER" and self._peek(1).kind == "DCOLON":
            probability = float(self._advance().text)
            self._advance()  # DCOLON
            return None, probability
        # Form: NUMBER ':'  (probability without label)
        if token.kind == "NUMBER" and self._peek(1).kind == "COLON":
            probability = float(self._advance().text)
            self._advance()  # COLON
            return None, probability
        return None, 1.0

    def _parse_body(self) -> Tuple[List[Atom], List[Comparison], List[Atom]]:
        atoms: List[Atom] = []
        constraints: List[Comparison] = []
        negations: List[Atom] = []
        while True:
            negated, item = self._parse_body_item()
            if negated:
                negations.append(item)  # type: ignore[arg-type]
            elif isinstance(item, Atom):
                atoms.append(item)
            else:
                constraints.append(item)
            if self._peek().kind == "COMMA":
                self._advance()
                continue
            break
        return atoms, constraints, negations

    def _parse_body_item(self) -> Tuple[bool, Union[Atom, Comparison]]:
        # A body item is an atom (IDENT '(' ...), a negated atom
        # ('not p(...)' or '\+ p(...)'), or a comparison between two terms
        # (e.g. P1 != P2, X < 3).
        token = self._peek()
        if token.kind == "NAF":
            self._advance()
            return True, self._parse_atom()
        if (token.kind == "IDENT" and token.text == "not"
                and self._peek(1).kind == "IDENT"
                and self._peek(2).kind == "LPAREN"):
            self._advance()
            return True, self._parse_atom()
        if token.kind == "IDENT" and self._peek(1).kind == "LPAREN":
            return False, self._parse_atom()
        left = self._parse_term()
        cmp_token = self._peek()
        if cmp_token.kind != "CMP":
            raise self._error(
                "expected comparison operator after term %s" % left
            )
        self._advance()
        right = self._parse_term()
        return False, Comparison(cmp_token.text, left, right)

    def _parse_atom(self) -> Atom:
        name_token = self._expect("IDENT", "relation name")
        if name_token.text.startswith(RESERVED_RELATION_PREFIX):
            raise ReservedNameError(
                name_token.text, name_token.line, name_token.column)
        args: List[Term] = []
        if self._peek().kind == "LPAREN":
            self._advance()
            if self._peek().kind != "RPAREN":
                args.append(self._parse_term())
                while self._peek().kind == "COMMA":
                    self._advance()
                    args.append(self._parse_term())
            self._expect("RPAREN", "')'")
        return Atom(name_token.text, args)

    def _parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "STRING":
            self._advance()
            return Constant(_unquote(token.text))
        if token.kind == "NUMBER":
            self._advance()
            return Constant(_parse_number(token.text))
        if token.kind == "MINUS":
            self._advance()
            number = self._expect("NUMBER", "number after '-'")
            value = _parse_number(number.text)
            return Constant(-value)
        if token.kind == "IDENT":
            self._advance()
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        raise self._error("expected a term, found %r" % (token.text or "end of input"))


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\'", "'").replace("\\\\", "\\")


def _parse_number(text: str) -> Union[int, float]:
    if re.fullmatch(r"\d+", text):
        return int(text)
    return float(text)


def parse_program(source: str) -> Program:
    """Parse ProbLog program text into a :class:`Program`.

    >>> program = parse_program('t1 0.5: edge(1,2).  r1 1.0: path(X,Y) :- edge(X,Y).')
    >>> len(program.facts), len(program.rules)
    (1, 1)

    Pathologically deep input that exhausts the interpreter stack raises
    a typed :class:`~repro.core.errors.DepthLimitError` instead of a bare
    ``RecursionError``, so callers (and service workers) fail the parse,
    not the process.
    """
    try:
        return _Parser(_tokenize(source)).parse_program()
    except RecursionError as exc:
        raise _depth_error("program parsing", exc) from exc


def _depth_error(phase: str, exc: RecursionError) -> RecursionError:
    """Convert a bare RecursionError into the typed depth-limit error."""
    if isinstance(exc, DepthLimitError):
        return exc
    return DepthLimitError(
        phase, sys.getrecursionlimit(),
        detail="input nests deeper than the interpreter stack")


def parse_facts(source: str) -> List[Fact]:
    """Parse a sequence of fact clauses, rejecting rules and directives.

    Unlike :func:`parse_program`, unlabelled facts keep ``label=None`` —
    no throwaway :class:`Program` assigns counter labels that could
    collide with a live program's.  This is the entry point for live
    updates (``P3.add_facts``), where the receiving program labels the
    new facts itself.
    """
    parser = _Parser(_tokenize(source))
    sink = Program()
    facts: List[Fact] = []
    try:
        while parser._peek().kind != "EOF":
            token = parser._peek()
            if parser._try_parse_directive(sink):
                raise ParseError(
                    "expected a fact clause, found a query/evidence "
                    "directive", token.line, token.column)
            clause = parser._parse_clause()
            if not isinstance(clause, Fact):
                raise ParseError(
                    "expected a fact clause, found a rule for %s"
                    % clause.head, token.line, token.column)
            facts.append(clause)
    except RecursionError as exc:
        raise _depth_error("fact parsing", exc) from exc
    return facts


def parse_clause(source: str) -> Union[Fact, Rule]:
    """Parse a single clause; raises :class:`ParseError` on trailing input."""
    parser = _Parser(_tokenize(source))
    clause = parser._parse_clause()
    trailing = parser._peek()
    if trailing.kind != "EOF":
        raise ParseError(
            "unexpected input after clause: %r" % trailing.text,
            trailing.line, trailing.column,
        )
    return clause


def parse_atom(source: str) -> Atom:
    """Parse a single (possibly non-ground) atom, e.g. ``know("Ben",X)``."""
    parser = _Parser(_tokenize(source))
    atom = parser._parse_atom()
    trailing = parser._peek()
    if trailing.kind not in ("EOF", "DOT"):
        raise ParseError(
            "unexpected input after atom: %r" % trailing.text,
            trailing.line, trailing.column,
        )
    return atom


def parse_file(path: str) -> Program:
    """Parse a ProbLog program from a file path."""
    with open(path) as handle:
        return parse_program(handle.read())
