"""The executor front door must hand backends a *complete*
:class:`InferenceRequest`: sample budget, mixed seed, worker count, and
the per-query deadline.  Historically only samples/seed were plumbed, so
the parallel kernel always ran single-shard no matter how wide the
executor was configured — these tests pin the fix.
"""

import time

import pytest

from repro import P3, P3Config
from repro.data import ACQUAINTANCE
from repro.exec import QueryExecutor, QuerySpec
from repro.inference.exact import exact_probability
from repro.inference.registry import BackendReading, override_backend

KEY = 'know("Ben","Elena")'
KEY_PROBABILITY = 0.163840


def _spy_backend(name, seen):
    def spy(polynomial, probabilities, request):
        seen.append(request)
        return BackendReading(
            name, exact_probability(polynomial, probabilities))
    return spy


def _system(**config_overrides):
    p3 = P3.from_source(ACQUAINTANCE, config=P3Config(**config_overrides))
    p3.evaluate()
    return p3


class TestWorkersPlumbing:
    def test_configured_inference_workers_reach_the_backend(self):
        seen = []
        p3 = _system(inference_workers=6)
        with override_backend("parallel", _spy_backend("parallel", seen)):
            with QueryExecutor(p3) as executor:
                value = executor.probability(KEY, method="parallel")
        assert value == pytest.approx(KEY_PROBABILITY)
        assert seen[0].workers == 6

    def test_workers_default_to_executor_width(self):
        seen = []
        p3 = _system()
        with override_backend("parallel", _spy_backend("parallel", seen)):
            with QueryExecutor(p3, max_workers=3) as executor:
                executor.probability(KEY, method="parallel")
        assert seen[0].workers == 3

    def test_batch_path_carries_workers_too(self):
        seen = []
        p3 = _system(inference_workers=5)
        with override_backend("parallel", _spy_backend("parallel", seen)):
            with QueryExecutor(p3) as executor:
                batch = executor.run([QuerySpec.probability(
                    KEY, method="parallel")])
        assert batch.ok
        assert seen[0].workers == 5

    def test_parallel_kernel_actually_shards(self):
        """End-to-end: with workers > 1 the kernel splits the sample
        budget across shard streams, which changes the RNG layout
        relative to a single-worker run of the same seed."""
        from repro.exec.executor import _mix_seed
        from repro.inference.kernel import SHARD_SIZE, kernel_probability

        p3 = _system(inference_workers=4, seed=7)
        poly = p3.polynomial_of(KEY)
        samples = 4 * SHARD_SIZE
        wide = kernel_probability(poly, p3.probabilities,
                                  samples=samples,
                                  seed=_mix_seed(7, KEY), workers=4)
        assert wide.samples == samples
        with QueryExecutor(p3) as executor:
            via_executor = executor.probability(
                KEY, method="parallel", samples=samples, seed=7)
        # The executor's answer must be the wide (multi-worker) kernel's
        # answer, bit for bit — proof the worker count arrived.
        assert via_executor == wide.value

    def test_config_validates_inference_workers(self):
        assert P3Config(inference_workers=2).inference_workers == 2
        assert P3Config().inference_workers is None
        with pytest.raises(ValueError):
            P3Config(inference_workers=0)


class TestDeadlinePlumbing:
    def test_deadlined_spec_hands_backend_the_deadline(self):
        seen = []
        p3 = _system()
        with override_backend("parallel", _spy_backend("parallel", seen)):
            with QueryExecutor(p3) as executor:
                batch = executor.run([QuerySpec.probability(
                    KEY, method="parallel", timeout=30.0)])
        assert batch.ok
        deadline = seen[0].deadline
        assert deadline is not None
        assert deadline > time.monotonic()
        assert deadline < time.monotonic() + 31.0

    def test_undeadlined_query_leaves_deadline_unset(self):
        seen = []
        p3 = _system()
        with override_backend("parallel", _spy_backend("parallel", seen)):
            with QueryExecutor(p3) as executor:
                executor.run([QuerySpec.probability(KEY, method="parallel")])
        assert seen[0].deadline is None
