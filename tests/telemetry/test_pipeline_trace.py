"""End-to-end acceptance tests: tracing the real query pipeline.

These drive the actual P3 system (the Figure 2 acquaintance example)
with telemetry enabled and check the produced span trees, exports, and
metrics against the invariants CI's smoke step enforces.
"""

from __future__ import annotations

import json

import pytest

from repro import P3, QuerySpec, telemetry
from repro.data import acquaintance_program
from repro.io.serialize import trace_to_json
from repro.telemetry import TelemetryConfig, validate_span_dicts

KEY = 'know("Ben","Elena")'


@pytest.fixture()
def p3():
    system = P3(acquaintance_program())
    system.evaluate()
    return system


def ring_dicts(rt):
    return [span.to_dict(rt.tracer.anchor_ns) for span in rt.ring.spans()]


class TestTracedExplanation:
    def test_explanation_covers_extract_and_infer_stages(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        explanation = p3.explain(KEY)
        assert explanation.probability == pytest.approx(0.16384)
        names = {span.name for span in rt.ring.spans()}
        assert {"query", "extract", "extract.polynomial",
                "infer", "infer.backend"} <= names

    def test_spans_nest_correctly(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        p3.explain(KEY)
        assert validate_span_dicts(ring_dicts(rt)) == []

    def test_stage_spans_nest_under_the_query_span(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        p3.explain(KEY)
        spans = {span.span_id: span for span in rt.ring.spans()}
        by_name = {span.name: span for span in spans.values()}
        query = by_name["query"]
        assert query.parent_id is None
        assert spans[by_name["extract"].parent_id].name == "query"
        assert spans[by_name["extract.polynomial"].parent_id].name == "extract"
        assert spans[by_name["infer"].parent_id].name == "query"
        assert spans[by_name["infer.backend"].parent_id].name == "infer"
        assert query.trace_id == by_name["infer.backend"].trace_id

    def test_backend_span_records_reading(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        p3.probability_of(KEY)
        [backend] = [span for span in rt.ring.spans()
                     if span.name == "infer.backend"]
        assert backend.attributes["backend"] == "exact"
        assert backend.attributes["value"] == pytest.approx(0.16384)
        assert backend.attributes["monomials"] == 2


class TestBatchFanout:
    def test_worker_spans_nest_under_the_batch_span(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        batch = p3.executor().run(
            [KEY, QuerySpec.explain(KEY), 'know("Steve","Elena")'],
            parallel=True)
        assert len(batch) == 3
        dicts = ring_dicts(rt)
        assert validate_span_dicts(dicts) == []
        roots = [d for d in dicts if d["parent_id"] is None]
        batch_roots = [d for d in roots if d["name"] == "batch"]
        assert len(batch_roots) == 1
        batch_trace = batch_roots[0]["trace_id"]
        query_spans = [d for d in dicts if d["name"] == "query"]
        assert query_spans
        assert all(d["trace_id"] == batch_trace for d in query_spans)


class TestExports:
    def test_jsonl_export_parses_and_validates(self, p3, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry.configure(TelemetryConfig(trace_path=str(path)))
        p3.explain(KEY)
        telemetry.finish()
        spans = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert spans
        assert validate_span_dicts(spans) == []
        assert {"query", "infer.backend"} <= {s["name"] for s in spans}

    def test_chrome_export_written_on_finish(self, p3, tmp_path):
        path = tmp_path / "chrome.json"
        telemetry.configure(TelemetryConfig(chrome_path=str(path)))
        p3.explain(KEY)
        telemetry.finish()
        document = json.loads(path.read_text())
        names = {event["name"] for event in document["traceEvents"]
                 if event["ph"] == "X"}
        assert {"query", "extract", "infer"} <= names

    def test_trace_envelope_round_trip(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        p3.explain(KEY)
        envelope = trace_to_json(rt.ring.spans(), rt.tracer.anchor_ns)
        assert envelope["version"] == 2
        assert envelope["kind"] == "trace"
        assert validate_span_dicts(envelope["spans"]) == []


class TestMetricsConsistency:
    def test_cache_counters_agree_with_executor_stats(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        p3.probability_of(KEY)   # cold: misses
        p3.probability_of(KEY)   # warm: result-cache hit
        stats = p3.executor().stats()["caches"]
        requests = rt.metrics.get("p3_cache_requests_total")
        for cache in ("polynomial", "probability"):
            assert requests.value(
                cache=cache, outcome="hit") == stats[cache]["hits"]
            assert requests.value(
                cache=cache, outcome="miss") == stats[cache]["misses"]

    def test_query_counters_agree_with_executor_stats(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        p3.probability_of(KEY)
        p3.explain(KEY)
        stats = p3.executor().stats()
        queries = rt.metrics.get("p3_queries_total")
        for kind, count in stats["queries"].items():
            assert queries.value(kind=kind) == count

    def test_backend_latency_histogram_counts_calls(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        p3.probability_of(KEY)
        calls = rt.metrics.get("p3_infer_calls_total")
        assert calls.value(backend="exact") == 1
        snapshot = rt.metrics.get("p3_infer_seconds").snapshot(
            backend="exact")
        assert snapshot["count"] == 1
        assert snapshot["sum"] > 0.0

    def test_prometheus_export_carries_the_pipeline_metrics(self, p3):
        rt = telemetry.configure(TelemetryConfig())
        p3.probability_of(KEY)
        text = rt.metrics.to_prometheus()
        assert "# TYPE p3_infer_seconds histogram" in text
        assert 'p3_infer_calls_total{backend="exact"} 1' in text
        assert 'p3_cache_requests_total{cache="polynomial"' in text
        assert "# TYPE p3_stage_seconds histogram" in text


class TestDisabledOverheadPath:
    def test_disabled_runtime_records_nothing(self, p3):
        p3.probability_of(KEY)
        rt = telemetry.runtime()
        assert not rt.enabled
        assert rt.ring is None
        assert rt.metrics.names() == []

    def test_results_identical_with_and_without_telemetry(self, p3):
        baseline = p3.probability_of(KEY)
        telemetry.configure(TelemetryConfig())
        fresh = P3(acquaintance_program())
        fresh.evaluate()
        assert fresh.probability_of(KEY) == pytest.approx(baseline)
