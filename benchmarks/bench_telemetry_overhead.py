"""Telemetry overhead: the traced pipeline vs the no-op runtime.

The telemetry design contract is that the *disabled* path costs one
module-global read plus one attribute check per instrumentation site, so
production throughput is unaffected, while the *enabled* path (spans into
the ring buffer plus metric updates) stays cheap enough to leave on in
development.  This benchmark runs the same warm executor batch three ways
and records the medians:

baseline     telemetry disabled (the no-op runtime)
ring         enabled, ring-buffer sink only
ring+metrics enabled with the same sinks, metrics flowing (identical to
             "ring" — metrics always flow when enabled — measured twice
             to expose run-to-run noise next to the real deltas)

Assertions are deliberately lenient (shared CI machines are noisy): the
enabled path must stay within 3x of baseline on this cache-hit-dominated
workload, and the disabled path must not regress against itself.
"""

import statistics
import time

from repro import telemetry
from repro.exec import QuerySpec

from reporting import record_json, record_table
from workloads import query_workload

BATCH_SIZE = 40
REPEATS = 5


def _setup():
    p3, _, _ = query_workload()
    keys = sorted(str(atom) for atom in p3.derived_atoms("trustPath"))
    keys = keys[:BATCH_SIZE]
    specs = [QuerySpec.probability(key) for key in keys]
    executor = p3.executor()
    executor.run(specs)  # warm the shared caches once
    return executor, specs


def _median_seconds(executor, specs):
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        batch = executor.run(specs)
        samples.append(time.perf_counter() - start)
        assert batch.ok
    return statistics.median(samples)


def test_telemetry_overhead():
    executor, specs = _setup()

    telemetry.disable()
    baseline = _median_seconds(executor, specs)

    telemetry.configure(telemetry.TelemetryConfig())
    try:
        ring = _median_seconds(executor, specs)
        ring_again = _median_seconds(executor, specs)
        spans_seen = len(telemetry.runtime().ring)
    finally:
        telemetry.disable()

    disabled_again = _median_seconds(executor, specs)

    assert spans_seen > 0, "enabled run must produce spans"
    # Lenient bounds: enabled tracing may cost real time on this
    # microbenchmark (every query is a cache hit, so span bookkeeping is
    # a large fraction of almost-zero work), but not blow up.
    assert ring <= baseline * 3 + 0.05, (
        "enabled telemetry too slow: %.6fs vs %.6fs" % (ring, baseline))
    assert disabled_again <= baseline * 2 + 0.05, (
        "disabling telemetry must restore baseline throughput")

    overhead = (ring / baseline - 1.0) if baseline > 0 else 0.0
    record_table(
        "telemetry_overhead",
        "Telemetry overhead: warm %d-query batch, median of %d runs"
        % (BATCH_SIZE, REPEATS),
        ["mode", "seconds", "vs baseline"],
        [
            ["disabled (baseline)", baseline, 1.0],
            ["enabled (ring sink)", ring, ring / max(baseline, 1e-12)],
            ["enabled (repeat)", ring_again,
             ring_again / max(baseline, 1e-12)],
            ["disabled again", disabled_again,
             disabled_again / max(baseline, 1e-12)],
        ],
    )
    record_json("BENCH_telemetry", {
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "baseline_seconds": baseline,
        "enabled_seconds": ring,
        "enabled_repeat_seconds": ring_again,
        "disabled_again_seconds": disabled_again,
        "relative_overhead": overhead,
        "spans_per_run": spans_seen // (2 * REPEATS),
    })
