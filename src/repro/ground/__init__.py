"""Query-directed grounding: magic sets over an interned-term arena.

The subsystem behind ``P3Config(grounding='query'|'auto')``:

- :mod:`repro.ground.arena` — interned terms and columnar fact tables.
- :mod:`repro.ground.relevance` — :func:`ground_goal`, the magic-fused
  grounder emitting only the query-relevant provenance subgraph.
- :mod:`repro.ground.stream` — bounded-memory streaming extraction that
  survives budget exhaustion with well-formed partials.
- :mod:`repro.ground.planner` — the per-system planner P3 evaluates
  through, with coverage tracking and the query→full fallback ladder.
"""

from .arena import FactStore, RelationTable, TermArena
from .planner import AUTO_FACT_THRESHOLD, RUNGS, GroundingPlanner
from .relevance import GroundedGoal, ground_goal
from .stream import (
    StreamOutcome, ground_and_stream, iter_deepening, stream_extract)

__all__ = [
    "AUTO_FACT_THRESHOLD",
    "FactStore",
    "GroundedGoal",
    "GroundingPlanner",
    "RelationTable",
    "RUNGS",
    "StreamOutcome",
    "TermArena",
    "ground_and_stream",
    "ground_goal",
    "iter_deepening",
    "stream_extract",
]
