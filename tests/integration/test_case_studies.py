"""End-to-end integration tests: the paper's case studies in full.

Each test runs an entire pipeline — parse, evaluate, capture provenance,
extract polynomials, answer queries — and asserts the paper's qualitative
claims (and, where DESIGN.md §4 establishes them, the exact numbers).
"""

import pytest

from repro import P3, P3Config
from repro.data import (
    ACQUAINTANCE,
    fixed_scene,
    generate_network,
    modified_scene,
    paper_fragment,
)
from repro.inference import exact_probability
from repro.queries import random_strategy


class TestAcquaintanceEndToEnd:
    """Sections 2.1 and 4: the running example, all four query types."""

    @pytest.fixture(scope="class")
    def p3(self):
        p3 = P3.from_source(ACQUAINTANCE)
        p3.evaluate()
        return p3

    def test_derived_tuples(self, p3):
        know = set(map(str, p3.derived_atoms("know")))
        assert know == {
            'know("Ben","Steve")', 'know("Ben","Elena")',
            'know("Steve","Elena")', 'know("Elena","Steve")',
        }

    def test_all_backends_agree_on_query(self, p3):
        exact = p3.probability_of("know", "Ben", "Elena", method="exact")
        bdd = p3.probability_of("know", "Ben", "Elena", method="bdd")
        assert exact == pytest.approx(0.16384)
        assert bdd == pytest.approx(0.16384)
        for method in ("mc", "parallel", "karp-luby"):
            estimate = P3.from_source(
                ACQUAINTANCE,
                P3Config(probability_method=method, samples=60000, seed=4))
            estimate.evaluate()
            assert estimate.probability_of(
                "know", "Ben", "Elena") == pytest.approx(0.16384, abs=0.01)

    def test_four_query_types_compose(self, p3):
        explanation = p3.explain("know", "Ben", "Elena")
        sufficient = p3.sufficient_provenance(
            "know", "Ben", "Elena", epsilon=0.05, method="naive")
        influence = p3.influence("know", "Ben", "Elena")
        plan = p3.modify("know", "Ben", "Elena", target=0.5)
        assert explanation.derivation_count == 2
        assert len(sufficient.sufficient) == 1
        assert str(influence.most_influential.literal) == "r3"
        assert plan.reached and len(plan.steps) == 1

    def test_modification_plan_verifies_under_rerun(self, p3):
        plan = p3.modify("know", "Ben", "Elena", target=0.5)
        # Re-run the PROGRAM with the modified rule probability and check
        # the derived tuple's probability actually becomes 0.5.
        new_r3 = plan.steps[0].new_probability
        source = ACQUAINTANCE.replace(
            "r3 0.2:", "r3 %.6f:" % new_r3)
        rerun = P3.from_source(source)
        rerun.evaluate()
        assert rerun.probability_of(
            "know", "Ben", "Elena") == pytest.approx(0.5, abs=1e-6)


class TestTrustCaseStudy:
    """Section 5.2: Queries 2A-2C on the Figure 8 fragment."""

    @pytest.fixture(scope="class")
    def p3(self):
        p3 = P3(paper_fragment().to_program())
        p3.evaluate()
        return p3

    def test_query_2a_structure(self, p3):
        explanation = p3.explain("mutualTrustPath", 1, 6)
        text = explanation.to_text()
        # Figure 8: mutual trust via both directions.
        assert "trustPath(1,6)" in text
        assert "trustPath(6,1)" in text

    def test_trustpath_derivation_counts(self, p3):
        # Paper: trustPath(6,1) has a single derivation (via Person 2);
        # trustPath(1,6) has two (1->2->6 and 1->13->2->6).
        assert len(p3.polynomial_of("trustPath", 6, 1)) == 1
        assert len(p3.polynomial_of("trustPath", 1, 6)) == 2

    def test_query_2b_values(self, p3):
        report = p3.influence("mutualTrustPath", 1, 6, kind="tuple")
        scores = {str(s.literal): s.influence for s in report}
        assert scores["trust(6,2)"] == pytest.approx(0.51, abs=0.01)
        assert scores["trust(2,6)"] == pytest.approx(0.48, abs=0.01)

    def test_query_2c_optimal_strategy(self, p3):
        plan = p3.modify("mutualTrustPath", 1, 6, target=0.7,
                         only_tuples=True)
        assert [str(s.literal) for s in plan.steps] == [
            "trust(6,2)", "trust(2,6)", "trust(2,1)"]
        assert plan.total_cost == pytest.approx(0.58, abs=0.005)

    def test_query_2c_random_baseline_costs_more(self, p3):
        poly = p3.polynomial_of("mutualTrustPath", 1, 6)
        greedy_cost = p3.modify("mutualTrustPath", 1, 6, target=0.7,
                                only_tuples=True).total_cost
        costs = []
        for seed in range(6):
            plan = random_strategy(
                poly, p3.probabilities, 0.7,
                modifiable=lambda lit: lit.is_tuple, seed=seed)
            if plan.reached:
                costs.append(plan.total_cost)
        assert costs, "random baseline never reached the target"
        average = sum(costs) / len(costs)
        assert average > greedy_cost


class TestVQACaseStudy:
    """Section 5.1: the full debugging narrative (Queries 1A-1C)."""

    def test_debug_and_fix_cycle(self):
        config = P3Config(hop_limit=8)
        buggy = P3(modified_scene().to_program(), config)
        buggy.evaluate()

        def winner(p3):
            return max(
                ((a.as_values()[1], p3.probability_of(str(a)))
                 for a in p3.derived_atoms("ans")),
                key=lambda pair: pair[1])[0]

        assert winner(buggy) == "barn"  # the bug

        # Locate the culprit via unique influence (Query 1C).
        barn_lits = buggy.polynomial_of("ans", "ID1", "barn").literals()
        report = buggy.influence("ans", "ID1", "church", relation="sim")
        unique = [s for s in report if s.literal not in barn_lits]
        suspect = unique[0].literal
        assert str(suspect) == 'sim("church","cross")'

        # Compute the fix via the Modification Query.
        target = buggy.probability_of("ans", "ID1", "barn")
        plan = buggy.modify("ans", "ID1", "church", target=target,
                            modifiable=lambda lit: lit == suspect)
        assert plan.reached

        # The repaired scene answers church.
        repaired = P3(fixed_scene().to_program(), config)
        repaired.evaluate()
        assert winner(repaired) == "church"


class TestSyntheticNetworkAtScale:
    """The Section 6 pipeline on a generated network sample."""

    def test_sampled_trust_pipeline(self):
        network = generate_network(nodes=400, edges=1600, seed=11)
        sample = network.sample_nodes_edges(40, 60, seed=3)
        p3 = P3(sample.to_program(), P3Config(hop_limit=4))
        p3.evaluate()
        mutual = list(map(str, p3.derived_atoms("mutualTrustPath")))
        assert mutual, "sample should contain mutual trust paths"
        key = mutual[0]
        poly = p3.polynomial_of(key)
        probability = exact_probability(poly, p3.probabilities)
        assert 0.0 < probability <= 1.0
        sufficient = p3.sufficient_provenance(key, epsilon=0.05,
                                              method="naive")
        assert sufficient.error <= 0.05 + 1e-12
        report = p3.influence(key, kind="tuple")
        assert report.most_influential is not None
