"""End-to-end HTTP tests: the service booted for real on a loopback
port, driven with plain ``http.client`` — concurrent multi-tenant
batches, live updates with epoch invalidation, backpressure, and the
operational endpoints."""

import json
import threading
import time
import http.client

import pytest

from repro import telemetry
from repro.data import ACQUAINTANCE
from repro.inference.exact import exact_probability
from repro.inference.registry import BackendReading, override_backend
from repro.serve import (
    AdmissionController,
    ProvenanceService,
    TenantRegistry,
    start_in_background,
)

KEY = 'know("Ben","Elena")'
KEY_PROBABILITY = 0.163840
OTHER = 'know("Ben","Steve")'
NEW_FACT = 't9 0.5: live("Zoe","DC").'
NEW_KEY = 'know("Zoe","Elena")'


def request(port, method, path, body=None, timeout=30):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        data = response.read()
        headers = {name.lower(): value
                   for name, value in response.getheaders()}
        return response.status, headers, data
    finally:
        connection.close()


def json_request(port, method, path, body=None, timeout=30):
    status, headers, data = request(port, method, path, body, timeout)
    return status, headers, json.loads(data)


@pytest.fixture()
def service():
    registry = TenantRegistry()
    registry.create("alpha", source=ACQUAINTANCE)
    registry.create("beta", source=ACQUAINTANCE)
    svc = ProvenanceService(
        registry, AdmissionController(max_concurrent=4, max_queue=8))
    handle = start_in_background(svc)
    yield handle
    handle.stop()
    registry.close()


class TestQueries:
    def test_batch_envelope_carries_library_outcomes(self, service):
        status, _, document = json_request(
            service.port, "POST", "/tenants/alpha/query",
            {"specs": [KEY, {"kind": "probability", "key": OTHER}]})
        assert status == 200
        assert document["kind"] == "batch_result"
        assert document["tenant"] == "alpha"
        outcomes = document["result"]["outcomes"]
        assert outcomes[0]["value"] == pytest.approx(KEY_PROBABILITY)
        assert outcomes[1]["value"] == pytest.approx(1.0)

    def test_concurrent_multi_tenant_batches(self, service):
        """Many clients, two tenants, one shared service: every batch
        answers correctly and tenants stay isolated."""
        errors = []

        def client(tenant):
            try:
                for _ in range(5):
                    status, _, document = json_request(
                        service.port, "POST",
                        "/tenants/%s/query" % tenant, {"specs": [KEY]})
                    assert status == 200, document
                    value = document["result"]["outcomes"][0]["value"]
                    assert value == pytest.approx(KEY_PROBABILITY)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client,
                                    args=("alpha" if i % 2 else "beta",),
                                    daemon=True)
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors

    def test_unknown_tenant_404(self, service):
        status, _, document = json_request(
            service.port, "POST", "/tenants/ghost/query",
            {"specs": [KEY]})
        assert status == 404
        assert document["kind"] == "error"

    def test_malformed_body_400(self, service):
        status, _, data = request(service.port, "POST",
                                  "/tenants/alpha/query",
                                  body=None)
        assert status == 400
        status, _, document = json_request(
            service.port, "POST", "/tenants/alpha/query",
            {"specs": "not-a-list"})
        assert status == 400
        assert document["kind"] == "error"

    def test_unroutable_path_404(self, service):
        status, _, document = json_request(service.port, "GET",
                                           "/no/such/route")
        assert status == 404
        assert document["kind"] == "error"


class TestLiveUpdates:
    def test_update_bumps_epoch_and_invalidates_over_http(self, service):
        # know("Zoe","Elena") does not exist yet.
        status, _, before = json_request(
            service.port, "POST", "/tenants/alpha/query",
            {"specs": [NEW_KEY]})
        assert status == 200
        assert "error" in before["result"]["outcomes"][0]

        status, _, update = json_request(
            service.port, "POST", "/tenants/alpha/facts",
            {"facts": NEW_FACT})
        assert status == 200
        assert update["kind"] == "update"
        assert update["epoch"] == before["epoch"] + 1
        assert "delta" in update

        # The same spec now answers — the epoch bump invalidated the
        # cached failure from before the update.
        status, _, after = json_request(
            service.port, "POST", "/tenants/alpha/query",
            {"specs": [NEW_KEY]})
        assert status == 200
        assert after["epoch"] == update["epoch"]
        assert after["result"]["outcomes"][0]["value"] == pytest.approx(0.4)

    def test_update_isolated_per_tenant(self, service):
        json_request(service.port, "POST", "/tenants/alpha/facts",
                     {"facts": NEW_FACT})
        status, _, beta = json_request(
            service.port, "POST", "/tenants/beta/query",
            {"specs": [NEW_KEY]})
        assert status == 200
        # beta never saw alpha's new fact.
        assert "error" in beta["result"]["outcomes"][0]


class TestBackpressure:
    def test_queue_overflow_returns_429_with_retry_after(self):
        registry = TenantRegistry()
        registry.create("alpha", source=ACQUAINTANCE)
        service = ProvenanceService(
            registry, AdmissionController(max_concurrent=1, max_queue=0,
                                          retry_after_seconds=2.0))
        release = threading.Event()

        def wedged_exact(polynomial, probabilities, request):
            release.wait(timeout=30.0)
            return BackendReading("exact", exact_probability(
                polynomial, probabilities))

        handle = start_in_background(service)
        statuses = {}
        try:
            with override_backend("exact", wedged_exact):
                def slow_client():
                    statuses["slow"] = request(
                        service.port, "POST", "/tenants/alpha/query",
                        {"specs": [KEY]})[0]

                slow = threading.Thread(target=slow_client, daemon=True)
                slow.start()
                # Wait for the slow request to occupy the only slot.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    snapshot = json_request(service.port, "GET",
                                            "/healthz")[2]["admission"]
                    if snapshot["inflight"] >= 1:
                        break
                    time.sleep(0.01)
                status, headers, document = json_request(
                    service.port, "POST", "/tenants/alpha/query",
                    {"specs": [OTHER]})
                assert status == 429
                assert document["kind"] == "error"
                assert int(headers["retry-after"]) >= 2
                release.set()
                slow.join(timeout=30.0)
                assert statuses["slow"] == 200
        finally:
            release.set()
            handle.stop()
            registry.close()


class TestOperationalEndpoints:
    def test_healthz(self, service):
        status, _, document = json_request(service.port, "GET", "/healthz")
        assert status == 200
        assert document["kind"] == "health"
        assert document["status"] == "ok"
        assert document["tenants"] == 2
        assert document["admission"]["max_concurrent"] == 4

    def test_stats_expose_executor_document(self, service):
        json_request(service.port, "POST", "/tenants/alpha/query",
                     {"specs": [KEY]})
        status, _, document = json_request(
            service.port, "GET", "/tenants/alpha/stats")
        assert status == 200
        assert document["kind"] == "tenant_stats"
        assert document["queries"] >= 1
        assert "stats" in document
        assert document["breakers"] is not None  # service default config

    def test_tenant_listing(self, service):
        status, _, document = json_request(service.port, "GET", "/tenants")
        assert status == 200
        names = [entry["name"] for entry in document["tenants"]]
        assert names == ["alpha", "beta"]

    def test_create_and_delete_over_http(self, service):
        status, _, document = json_request(
            service.port, "POST", "/tenants/gamma",
            {"source": ACQUAINTANCE})
        assert status == 201
        assert document["kind"] == "tenant_stats"
        status, _, _ = json_request(service.port, "POST", "/tenants/gamma",
                                    {"source": ACQUAINTANCE})
        assert status == 409
        status, _, document = json_request(service.port, "DELETE",
                                           "/tenants/gamma")
        assert status == 200
        assert document["kind"] == "tenant_removed"

    def test_metrics_scrape(self):
        registry = TenantRegistry()
        registry.create("alpha", source=ACQUAINTANCE)
        service = ProvenanceService(registry)
        telemetry.configure(telemetry.TelemetryConfig())
        handle = start_in_background(service)
        try:
            json_request(service.port, "POST", "/tenants/alpha/query",
                         {"specs": [KEY]})
            status, headers, data = request(service.port, "GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            text = data.decode("utf-8")
            assert "p3_http_requests_total" in text
            assert "p3_http_inflight" in text
        finally:
            handle.stop()
            registry.close()
            telemetry.disable()


class TestServiceChaos:
    def test_service_survives_chaos(self):
        from repro.resilience.chaos import run_service_chaos
        report = run_service_chaos(seed=5, request_count=40)
        assert report.unhandled is None
        assert report.well_formed == report.requests
        assert report.server_errors == 0
        assert report.ok, report.summary()
