"""Record/replay of whole query sessions against the durable store.

``record_session`` runs a list of query specs against a live system —
optionally interleaved with fact updates, each of which lands in the
store as a new epoch batch — and persists, per query, the epoch it ran
under and the exact result envelope it produced.  ``replay_recording``
later cold-starts the system from the store at each recorded epoch,
re-runs every query with the recorded method/samples/seed, and asserts
the envelopes match **byte for byte** — turning any production incident
into a local reproducer.

Byte-identity holds because every source of nondeterminism is pinned:
stochastic backends derive their seed from the configured seed and the
query key (scheduling-independent), floats round-trip exactly through
SQLite REAL columns, and envelopes are sorted-key JSON.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..exec.specs import QuerySpec
from .schema import RecordingError, StoreError

_PARAM_TYPES = {int: "int", float: "float", str: "str", bool: "bool"}
_PARAM_DECODERS = {
    "int": int,
    "float": float,
    "str": str,
    "bool": lambda text: text == "True",
}


def result_envelope(spec: QuerySpec, value: Any) -> str:
    """The stable JSON envelope for one query answer.

    Protocol results (:class:`~repro.queries.result.QueryResult`
    implementers) use the uniform versioned envelope from
    :func:`repro.io.serialize.dump_query_result`; scalar answers
    (probability / conditional queries return floats) get the same
    treatment under kind ``query_value``.
    """
    from ..io.serialize import FORMAT_VERSION, query_result_to_json
    if hasattr(value, "to_dict") and getattr(value, "query_type", ""):
        document = query_result_to_json(value)
    else:
        document = {
            "version": FORMAT_VERSION,
            "kind": "query_value",
            "query_type": spec.kind,
            "key": spec.key,
            "value": value,
        }
    return json.dumps(document, indent=2, sort_keys=True)


class ReplayMismatch:
    """One replayed query whose envelope diverged from the recording."""

    __slots__ = ("seq", "epoch", "kind", "key", "expected", "actual")

    def __init__(self, seq: int, epoch: int, kind: str, key: str,
                 expected: str, actual: str) -> None:
        self.seq = seq
        self.epoch = epoch
        self.kind = kind
        self.key = key
        self.expected = expected
        self.actual = actual

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "epoch": self.epoch,
            "kind": self.kind,
            "key": self.key,
            "expected": json.loads(self.expected),
            "actual": json.loads(self.actual),
        }


class ReplayReport:
    """Outcome of one replay: per-query byte-comparison results."""

    def __init__(self, name: str, total: int,
                 mismatches: Sequence[ReplayMismatch],
                 epochs: Sequence[int]) -> None:
        self.name = name
        self.total = total
        self.mismatches = list(mismatches)
        self.epochs = sorted(set(epochs))

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def matched(self) -> int:
        return self.total - len(self.mismatches)

    def summary(self) -> str:
        if self.ok:
            return ("replay '%s': %d/%d queries byte-identical across "
                    "epochs %s" % (self.name, self.matched, self.total,
                                   self.epochs))
        return "replay '%s': %d/%d queries DIVERGED" % (
            self.name, len(self.mismatches), self.total)

    def to_dict(self) -> dict:
        from ..io.serialize import FORMAT_VERSION
        return {
            "version": FORMAT_VERSION,
            "kind": "replay_report",
            "name": self.name,
            "ok": self.ok,
            "total": self.total,
            "matched": self.matched,
            "epochs": self.epochs,
            "mismatches": [entry.to_dict() for entry in self.mismatches],
        }


class RecordedQuery:
    """One captured query: spec + epoch + the envelope it produced."""

    __slots__ = ("seq", "epoch", "spec", "envelope")

    def __init__(self, seq: int, epoch: int, spec: QuerySpec,
                 envelope: str) -> None:
        self.seq = seq
        self.epoch = epoch
        self.spec = spec
        self.envelope = envelope


class Recording:
    """A named, replayable query session loaded from the store."""

    def __init__(self, name: str, config_fields: Dict[str, Any],
                 queries: Sequence[RecordedQuery]) -> None:
        self.name = name
        self.config_fields = dict(config_fields)
        self.queries = list(queries)


def _spec_rows(spec: QuerySpec):
    """Split a spec's params into scalar rows + evidence rows.

    Raises :class:`RecordingError` for parameter values the normalized
    schema cannot hold (only int/float/str/bool scalars, plus the
    conditional-evidence mapping, are recordable).
    """
    scalars = []
    evidence = []
    for name in sorted(spec.params):
        value = spec.params[name]
        if name == "evidence":
            for key in sorted(value):
                evidence.append((key, int(bool(value[key]))))
            continue
        value_type = _PARAM_TYPES.get(type(value))
        if value_type is None:
            raise RecordingError(
                "Cannot record %r parameter %s=%r (unsupported type %s)"
                % (spec.kind, name, value, type(value).__name__))
        scalars.append((name, value_type, str(value)))
    return scalars, evidence


def _spec_from_rows(kind: str, key: str, scalars, evidence) -> QuerySpec:
    params: Dict[str, Any] = {
        name: _PARAM_DECODERS[value_type](value)
        for name, value_type, value in scalars
    }
    if evidence:
        params["evidence"] = {
            entry_key: bool(observed) for entry_key, observed in evidence
        }
    return QuerySpec(kind, key, params)


def save_recording(store: Any, name: str, config: Any,
                   queries: Sequence[RecordedQuery]) -> None:
    """Persist a captured session under ``name`` (one transaction)."""
    connection = store._connection
    with store._lock:
        try:
            if connection.execute(
                    "SELECT 1 FROM recordings WHERE name = ?",
                    (name,)).fetchone() is not None:
                raise RecordingError(
                    "Recording %r already exists in %s" % (name, store.path))
            cursor = connection.execute(
                "INSERT INTO recordings (name, method, influence_method, "
                "derivation_method, samples, seed, hop_limit, query_count) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (name, config.probability_method, config.influence_method,
                 getattr(config, "derivation_method", None),
                 config.samples, config.seed, config.hop_limit,
                 len(queries)))
            recording_id = cursor.lastrowid
            for entry in queries:
                cursor = connection.execute(
                    "INSERT INTO recorded_queries (recording_id, seq, "
                    "epoch, kind, key, envelope) VALUES (?, ?, ?, ?, ?, ?)",
                    (recording_id, entry.seq, entry.epoch, entry.spec.kind,
                     entry.spec.key, entry.envelope))
                query_id = cursor.lastrowid
                scalars, evidence = _spec_rows(entry.spec)
                connection.executemany(
                    "INSERT INTO recorded_params (query_id, name, "
                    "value_type, value) VALUES (?, ?, ?, ?)",
                    [(query_id, pname, ptype, pvalue)
                     for pname, ptype, pvalue in scalars])
                connection.executemany(
                    "INSERT INTO recorded_evidence (query_id, key, "
                    "observed) VALUES (?, ?, ?)",
                    [(query_id, ekey, observed)
                     for ekey, observed in evidence])
            connection.commit()
        except BaseException:
            connection.rollback()
            raise


def list_recordings(store: Any) -> List[Dict[str, Any]]:
    with store._lock:
        rows = store._connection.execute(
            "SELECT name, query_count, seed, samples, method "
            "FROM recordings ORDER BY id").fetchall()
    return [
        {"name": name, "queries": count, "seed": seed,
         "samples": samples, "method": method}
        for name, count, seed, samples, method in rows
    ]


def load_recording(store: Any, name: Optional[str] = None) -> Recording:
    """Load a recording by name (or the only/newest one when unnamed)."""
    with store._lock:
        connection = store._connection
        if name is None:
            row = connection.execute(
                "SELECT name FROM recordings ORDER BY id DESC LIMIT 1"
            ).fetchone()
            if row is None:
                raise RecordingError(
                    "Store %s holds no recordings" % store.path)
            name = row[0]
        header = connection.execute(
            "SELECT id, method, influence_method, derivation_method, "
            "samples, seed, hop_limit FROM recordings WHERE name = ?",
            (name,)).fetchone()
        if header is None:
            raise RecordingError(
                "No recording named %r in %s" % (name, store.path))
        (recording_id, method, influence_method, derivation_method,
         samples, seed, hop_limit) = header
        queries: List[RecordedQuery] = []
        rows = connection.execute(
            "SELECT id, seq, epoch, kind, key, envelope "
            "FROM recorded_queries WHERE recording_id = ? ORDER BY seq",
            (recording_id,)).fetchall()
        for query_id, seq, epoch, kind, key, envelope in rows:
            scalars = connection.execute(
                "SELECT name, value_type, value FROM recorded_params "
                "WHERE query_id = ? ORDER BY name", (query_id,)).fetchall()
            evidence = connection.execute(
                "SELECT key, observed FROM recorded_evidence "
                "WHERE query_id = ? ORDER BY key", (query_id,)).fetchall()
            queries.append(RecordedQuery(
                seq, epoch, _spec_from_rows(kind, key, scalars, evidence),
                envelope))
    return Recording(name, {
        "probability_method": method,
        "influence_method": influence_method,
        "derivation_method": derivation_method,
        "samples": samples,
        "seed": seed,
        "hop_limit": hop_limit,
    }, queries)


def record_session(system: Any, store: Any, name: str,
                   specs: Sequence[object],
                   updates: Sequence[str] = ()) -> Recording:
    """Capture a query session: answer ``specs`` at the current epoch,
    then once more after each ``updates`` entry (fact source text fed to
    ``add_facts``, each landing in the store as a new epoch batch).

    Every answer is recorded with the epoch it ran under and its exact
    envelope text; polynomials extracted along the way are persisted at
    their epoch so replays prime the extraction cache.  The attached
    system syncs the store automatically; an unattached one is attached
    for the duration of the recording.
    """
    coerced = [QuerySpec.coerce(spec) for spec in specs]
    if not coerced:
        raise RecordingError("Cannot record an empty query session")
    for spec in coerced:
        _spec_rows(spec)  # validate recordability before running anything
    attached_here = system.store is None
    if attached_here:
        system.attach_store(store)
    elif system.store is not store:
        raise StoreError(
            "System is attached to a different store than the recording "
            "target")
    try:
        captured: List[RecordedQuery] = []
        executor = system.executor()
        phases: List[Optional[str]] = [None] + list(updates)
        seq = 0
        for phase in phases:
            if phase is not None:
                system.add_facts(phase)
            epoch = system.epoch
            for spec in coerced:
                value = executor.execute(spec)
                captured.append(RecordedQuery(
                    seq, epoch, spec, result_envelope(spec, value)))
                seq += 1
                if spec.key in system.graph:
                    store.save_polynomial(
                        spec.key, spec.params.get("hop_limit"),
                        executor.polynomial(
                            spec.key,
                            hop_limit=spec.params.get("hop_limit")),
                        epoch)
        save_recording(store, name, system.config, captured)
        return Recording(name, {}, captured)
    finally:
        if attached_here:
            system.detach_store()


def replay_recording(store: Any, name: Optional[str] = None,
                     system_cls: Optional[Any] = None) -> ReplayReport:
    """Re-run a recorded session against the store, cold.

    For every epoch the recording touched, a fresh system is
    warm-started from the store *as of that epoch* (no fixpoint
    evaluation, no shared state with the recorder) and each query is
    re-executed with the recorded method/samples/seed.  Envelopes are
    compared byte for byte.
    """
    if system_cls is None:
        from ..core.system import P3
        system_cls = P3
    recording = load_recording(store, name)
    from ..core.config import P3Config
    fields = recording.config_fields
    config = P3Config(
        probability_method=fields["probability_method"] or "exact",
        influence_method=fields["influence_method"] or "exact",
        derivation_method=fields["derivation_method"],
        samples=fields["samples"],
        seed=fields["seed"],
        hop_limit=fields["hop_limit"],
    )
    systems: Dict[int, Any] = {}
    mismatches: List[ReplayMismatch] = []
    epochs: List[int] = []
    for entry in recording.queries:
        epochs.append(entry.epoch)
        system = systems.get(entry.epoch)
        if system is None:
            system = store.open_system(
                system_cls, config=config, epoch=entry.epoch)
            systems[entry.epoch] = system
        value = system.executor().execute(entry.spec)
        actual = result_envelope(entry.spec, value)
        if actual != entry.envelope:
            mismatches.append(ReplayMismatch(
                entry.seq, entry.epoch, entry.spec.kind, entry.spec.key,
                entry.envelope, actual))
    return ReplayReport(
        recording.name, len(recording.queries), mismatches, epochs)
