"""Admission control: bounded queue, per-tenant caps, breaker rejects."""

import asyncio
from types import SimpleNamespace

import pytest

from repro.resilience.breaker import BreakerBoard, BreakerPolicy
from repro.serve import AdmissionController, AdmissionError


def run(coroutine):
    return asyncio.run(coroutine)


def _tenant(board=None, ladder=None, inflight=0):
    executor = SimpleNamespace(breaker_board=board, fallback_ladder=ladder)
    return SimpleNamespace(name="t", executor=executor, inflight=inflight)


class TestQueueBounds:
    def test_admits_up_to_concurrency(self):
        async def scenario():
            admission = AdmissionController(max_concurrent=2, max_queue=0)
            async with admission.admit():
                async with admission.admit():
                    snapshot = admission.snapshot()
                    assert snapshot["inflight"] == 2
                    # Both slots busy, queue disabled: the third is shed.
                    with pytest.raises(AdmissionError) as info:
                        async with admission.admit():
                            pass
                    assert info.value.status == 429
                    assert info.value.retry_after > 0
            assert admission.snapshot()["inflight"] == 0
            assert admission.snapshot()["rejected_total"] == 1
        run(scenario())

    def test_queued_request_proceeds_when_slot_frees(self):
        async def scenario():
            admission = AdmissionController(max_concurrent=1, max_queue=2)
            order = []

            async def holder(release):
                async with admission.admit():
                    order.append("held")
                    await release.wait()

            async def waiter():
                async with admission.admit():
                    order.append("waited")

            release = asyncio.Event()
            hold_task = asyncio.ensure_future(holder(release))
            await asyncio.sleep(0.01)
            wait_task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.01)
            assert admission.snapshot()["queued"] == 1
            release.set()
            await asyncio.gather(hold_task, wait_task)
            assert order == ["held", "waited"]
            assert admission.snapshot()["admitted_total"] == 2
        run(scenario())

    def test_per_tenant_inflight_cap(self):
        async def scenario():
            admission = AdmissionController(max_concurrent=8, max_queue=8,
                                            max_tenant_inflight=1)
            tenant = _tenant()
            async with admission.admit(tenant):
                assert tenant.inflight == 1
                with pytest.raises(AdmissionError) as info:
                    async with admission.admit(tenant):
                        pass
                assert info.value.status == 429
            assert tenant.inflight == 0
        run(scenario())

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(max_tenant_inflight=0)


class TestBreakerRejects:
    def _board_with(self, *failures):
        policy = BreakerPolicy(failure_threshold=0.5, window_size=4,
                               min_calls=2, cooldown_seconds=17.0)
        board = BreakerBoard(policy)
        for backend in failures:
            breaker = board.breaker(backend)
            for _ in range(4):
                breaker.record_failure()
        return board

    def _ladder(self, *methods):
        return SimpleNamespace(
            rungs=[SimpleNamespace(method=m) for m in methods])

    def test_all_rungs_open_is_503(self):
        async def scenario():
            board = self._board_with("exact", "bdd")
            tenant = _tenant(board=board, ladder=self._ladder("exact", "bdd"))
            admission = AdmissionController()
            with pytest.raises(AdmissionError) as info:
                async with admission.admit(tenant):
                    pass
            assert info.value.status == 503
            assert info.value.retry_after == pytest.approx(17.0)
        run(scenario())

    def test_one_healthy_rung_still_admits(self):
        async def scenario():
            board = self._board_with("exact")  # bdd stays closed
            tenant = _tenant(board=board, ladder=self._ladder("exact", "bdd"))
            admission = AdmissionController()
            async with admission.admit(tenant):
                pass
            assert admission.snapshot()["admitted_total"] == 1
        run(scenario())

    def test_no_resilience_always_admits(self):
        async def scenario():
            admission = AdmissionController()
            async with admission.admit(_tenant()):
                pass
        run(scenario())
