"""Property-based tests: all probability backends agree on random DNFs."""

from hypothesis import given, settings, strategies as st

from repro.inference.bdd import bdd_probability
from repro.inference.exact import brute_force_probability, exact_probability
from repro.inference.karp_luby import union_bound
from repro.inference.montecarlo import monte_carlo_probability
from repro.inference.parallel_mc import parallel_probability
from repro.provenance.polynomial import Monomial, Polynomial, tuple_literal

LITERAL_POOL = [tuple_literal(name) for name in "abcdefg"]


@st.composite
def polynomial_and_probabilities(draw):
    count = draw(st.integers(min_value=0, max_value=5))
    monomials = []
    for _ in range(count):
        width = draw(st.integers(min_value=1, max_value=3))
        literals = draw(st.permutations(LITERAL_POOL))[:width]
        monomials.append(Monomial(literals))
    poly = Polynomial(monomials)
    probs = {
        literal: draw(st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]))
        for literal in LITERAL_POOL
    }
    return poly, probs


class TestBackendAgreement:
    @settings(max_examples=60, deadline=None)
    @given(polynomial_and_probabilities())
    def test_exact_equals_brute_force(self, case):
        poly, probs = case
        assert abs(exact_probability(poly, probs)
                   - brute_force_probability(poly, probs)) < 1e-9

    @settings(max_examples=60, deadline=None)
    @given(polynomial_and_probabilities())
    def test_bdd_equals_brute_force(self, case):
        poly, probs = case
        assert abs(bdd_probability(poly, probs)
                   - brute_force_probability(poly, probs)) < 1e-9

    @settings(max_examples=15, deadline=None)
    @given(polynomial_and_probabilities(), st.integers(0, 2**31 - 1))
    def test_monte_carlo_within_tolerance(self, case, seed):
        poly, probs = case
        truth = exact_probability(poly, probs)
        estimate = monte_carlo_probability(poly, probs, 4000, seed=seed)
        # 5-sigma bound: fails with probability < 1e-6 per example.
        bound = 5 * max(estimate.standard_error, 0.008)
        assert abs(estimate.value - truth) <= bound

    @settings(max_examples=15, deadline=None)
    @given(polynomial_and_probabilities(), st.integers(0, 2**31 - 1))
    def test_parallel_mc_within_tolerance(self, case, seed):
        poly, probs = case
        truth = exact_probability(poly, probs)
        estimate = parallel_probability(poly, probs, 4000, seed=seed)
        bound = 5 * max(estimate.standard_error, 0.008)
        assert abs(estimate.value - truth) <= bound


class TestStructuralBounds:
    @settings(max_examples=60, deadline=None)
    @given(polynomial_and_probabilities())
    def test_probability_in_unit_interval(self, case):
        poly, probs = case
        value = exact_probability(poly, probs)
        assert -1e-12 <= value <= 1 + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(polynomial_and_probabilities())
    def test_union_bound_dominates(self, case):
        poly, probs = case
        assert union_bound(poly, probs) >= exact_probability(poly, probs) - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(polynomial_and_probabilities())
    def test_monotone_in_literal_probability(self, case):
        poly, probs = case
        if not poly.literals():
            return
        target = sorted(poly.literals())[0]
        baseline = exact_probability(poly, probs)
        raised = dict(probs)
        raised[target] = min(1.0, probs[target] + 0.3)
        assert exact_probability(poly, raised) >= baseline - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(polynomial_and_probabilities())
    def test_restriction_brackets_probability(self, case):
        # P[λ|x=0] ≤ P[λ] ≤ P[λ|x=1] for monotone DNF.
        poly, probs = case
        if not poly.literals():
            return
        target = sorted(poly.literals())[0]
        middle = exact_probability(poly, probs)
        low = exact_probability(poly.restrict(target, False), probs)
        high = exact_probability(poly.restrict(target, True), probs)
        assert low - 1e-9 <= middle <= high + 1e-9
