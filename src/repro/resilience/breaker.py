"""Per-backend circuit breakers: stop hammering a backend that keeps failing.

In a batch of hundreds of specs, a backend that fails deterministically
(or is wedged) would otherwise consume ``max_attempts × backoff`` of every
single query's deadline before the ladder falls through.  A breaker
remembers recent outcomes per backend and short-circuits:

- **closed** — normal operation; calls flow through, outcomes recorded in
  a sliding window.  When the window holds at least ``min_calls`` samples
  and the failure rate reaches ``failure_threshold``, the breaker trips
  **open**.
- **open** — calls are refused instantly with :class:`CircuitOpenError`
  (the ladder records a skip and moves to the next rung).  After
  ``cooldown_seconds`` the next caller is admitted as a probe
  (**half-open**).
- **half-open** — exactly one probe call is allowed through.  Success
  closes the breaker and clears the window; failure re-opens it for
  another cooldown.

Breakers are shared across a batch (one :class:`BreakerBoard` per
executor), so they are thread-safe; the clock is injectable for tests.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Callable, Deque, Dict, Optional

from .. import telemetry
from ..core.errors import TransientInferenceError

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(TransientInferenceError):
    """Refused without calling the backend: its breaker is open.

    Transient by nature — the breaker will admit a probe after cooldown —
    but ladders do not *retry* an open breaker; they skip the rung and
    record why.
    """

    def __init__(self, backend: str, retry_after: float) -> None:
        super().__init__(
            "Circuit for backend %r is open (probe in %.2fs)"
            % (backend, max(0.0, retry_after)))
        self.backend = backend
        self.retry_after = retry_after


class BreakerPolicy:
    """Thresholds governing when a breaker trips and recovers."""

    __slots__ = ("failure_threshold", "window_size", "min_calls",
                 "cooldown_seconds")

    def __init__(self,
                 failure_threshold: float = 0.5,
                 window_size: int = 10,
                 min_calls: int = 4,
                 cooldown_seconds: float = 5.0) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must lie in (0, 1]")
        if window_size < 1:
            raise ValueError("window_size must be positive")
        if min_calls < 1:
            raise ValueError("min_calls must be positive")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.window_size = window_size
        self.min_calls = min_calls
        self.cooldown_seconds = cooldown_seconds

    def to_dict(self) -> dict:
        return {
            "failure_threshold": self.failure_threshold,
            "window_size": self.window_size,
            "min_calls": self.min_calls,
            "cooldown_seconds": self.cooldown_seconds,
        }

    def __repr__(self) -> str:
        return ("BreakerPolicy(threshold=%g, window=%d, cooldown=%gs)"
                % (self.failure_threshold, self.window_size,
                   self.cooldown_seconds))


class CircuitBreaker:
    """Failure-rate breaker for one backend.

    Use :meth:`before_call` / :meth:`record_success` /
    :meth:`record_failure` around each backend invocation.  All methods
    are thread-safe.
    """

    def __init__(self, backend: str,
                 policy: Optional[BreakerPolicy] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.backend = backend
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._window: Deque[bool] = collections.deque(
            maxlen=self.policy.window_size)
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Caller holds the lock.  An open breaker past cooldown presents
        # as half-open: the next admitted caller becomes the probe.
        if self._state == OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.policy.cooldown_seconds:
                return HALF_OPEN
        return self._state

    def before_call(self) -> None:
        """Admit or refuse a call; raises :class:`CircuitOpenError` if open."""
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return
            if state == HALF_OPEN and not self._probe_inflight:
                self._state = HALF_OPEN
                self._probe_inflight = True
                return
            remaining = (self.policy.cooldown_seconds
                         - (self._clock() - self._opened_at))
            raise CircuitOpenError(self.backend, remaining)

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # Probe succeeded: full reset.
                self._state = CLOSED
                self._window.clear()
                self._probe_inflight = False
                return
            self._window.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._open()
                return
            self._window.append(False)
            if len(self._window) >= self.policy.min_calls:
                failures = sum(1 for ok in self._window if not ok)
                if failures / len(self._window) >= self.policy.failure_threshold:
                    self._open()

    def _open(self) -> None:
        # Caller holds the lock.
        self._state = OPEN
        self._opened_at = self._clock()
        self._window.clear()
        self.trips += 1
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_resilience_breaker_trips_total",
                help="Circuit breaker trips, by backend",
                labelnames=("backend",)).inc(backend=self.backend)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "backend": self.backend,
                "state": self._effective_state(),
                "trips": self.trips,
                "window": list(self._window),
            }

    def __repr__(self) -> str:
        return "CircuitBreaker(%r, %s, trips=%d)" % (
            self.backend, self.state, self.trips)


class BreakerBoard:
    """Lazily-created breakers keyed by backend name, sharing one policy."""

    def __init__(self, policy: Optional[BreakerPolicy] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, backend: str) -> CircuitBreaker:
        with self._lock:
            found = self._breakers.get(backend)
            if found is None:
                found = CircuitBreaker(backend, self.policy, self._clock)
                self._breakers[backend] = found
            return found

    def reset(self) -> None:
        with self._lock:
            self._breakers.clear()

    def to_dict(self) -> dict:
        with self._lock:
            breakers = list(self._breakers.values())
        return {name.backend: name.to_dict() for name in breakers}

    def __repr__(self) -> str:
        return "BreakerBoard(%d backends)" % len(self._breakers)
