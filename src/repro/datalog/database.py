"""In-memory relational store backing program evaluation.

Relations hold sets of ground :class:`~repro.datalog.terms.Atom` tuples and
maintain single-column hash indexes so rule-body joins can probe by the most
selective bound argument instead of scanning.  This is the "relational
tables" substrate of Section 3.2: derived tuples, and the ``prov``/``rule``
dependency tuples produced by the rewrite, all live here.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .terms import Atom, Constant, Substitution, Variable


class Relation:
    """A named set of ground atoms with per-column value indexes.

    ``indexed=False`` skips index maintenance — used for append-only
    bookkeeping relations (the provenance capture tables) that are only
    ever scanned, never joined.
    """

    def __init__(self, name: str, indexed: bool = True) -> None:
        self.name = name
        self.indexed = indexed
        self._atoms: Set[Atom] = set()
        # _indexes[column][constant] -> set of atoms with that constant there
        self._indexes: Dict[int, Dict[Constant, Set[Atom]]] = defaultdict(
            lambda: defaultdict(set)
        )

    def add(self, atom: Atom) -> bool:
        """Insert a ground atom; returns True when it was new."""
        if atom.relation != self.name:
            raise ValueError(
                "Atom %s inserted into relation %r" % (atom, self.name)
            )
        if not atom.is_ground:
            raise ValueError("Only ground atoms can be stored: %s" % atom)
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        if self.indexed:
            for column, arg in enumerate(atom.args):
                self._indexes[column][arg].add(atom)
        return True

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def match(self, pattern: Atom,
              subst: Optional[Substitution] = None) -> Iterator[Substitution]:
        """Yield extensions of ``subst`` unifying ``pattern`` with stored atoms.

        Uses the index of the most selective bound column to restrict the
        candidate set before unifying.
        """
        from .terms import unify_atom

        base: Substitution = subst or {}
        candidates = self._candidates(pattern, base)
        for atom in candidates:
            extended = unify_atom(pattern, atom, base)
            if extended is not None:
                yield extended

    def match_atoms(self, pattern: Atom,
                    subst: Optional[Substitution] = None
                    ) -> Iterator[Tuple[Atom, Substitution]]:
        """Like :meth:`match`, but also yields the matched stored atom.

        The engine uses this to filter matches by derivation generation
        during semi-naive evaluation.
        """
        from .terms import unify_atom

        base: Substitution = subst or {}
        for atom in self._candidates(pattern, base):
            extended = unify_atom(pattern, atom, base)
            if extended is not None:
                yield atom, extended

    def _candidates(self, pattern: Atom, subst: Substitution) -> Iterable[Atom]:
        if not self.indexed:
            return list(self._atoms)
        best: Optional[Set[Atom]] = None
        for column, arg in enumerate(pattern.args):
            if isinstance(arg, Variable):
                arg = subst.get(arg, arg)  # type: ignore[assignment]
            if isinstance(arg, Constant):
                bucket = self._indexes[column].get(arg)
                if bucket is None:
                    return ()
                if best is None or len(bucket) < len(best):
                    best = bucket
        if best is None:
            return list(self._atoms)
        return list(best)

    def __repr__(self) -> str:
        return "Relation(%r, %d tuples)" % (self.name, len(self._atoms))


class Database:
    """A collection of named relations.

    Missing relations spring into existence on first access so program
    evaluation never needs a schema declaration step.
    """

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}
        self._unindexed: Set[str] = set()

    def mark_unindexed(self, name: str) -> None:
        """Declare a relation append-only (no join indexes are built).

        Must be called before the relation's first insert.
        """
        if name in self._relations:
            raise ValueError(
                "Relation %r already exists; cannot change indexing" % name)
        self._unindexed.add(name)

    def relation(self, name: str) -> Relation:
        rel = self._relations.get(name)
        if rel is None:
            rel = Relation(name, indexed=name not in self._unindexed)
            self._relations[name] = rel
        return rel

    def add(self, atom: Atom) -> bool:
        """Insert a ground atom into its relation; True when new."""
        return self.relation(atom.relation).add(atom)

    def __contains__(self, atom: Atom) -> bool:
        rel = self._relations.get(atom.relation)
        return rel is not None and atom in rel

    def relations(self) -> List[str]:
        return sorted(self._relations)

    def atoms(self, relation: Optional[str] = None) -> Iterator[Atom]:
        """Iterate atoms of one relation, or of the whole database."""
        if relation is not None:
            rel = self._relations.get(relation)
            if rel is not None:
                yield from rel
            return
        for name in sorted(self._relations):
            yield from self._relations[name]

    def count(self, relation: Optional[str] = None) -> int:
        if relation is not None:
            rel = self._relations.get(relation)
            return len(rel) if rel is not None else 0
        return sum(len(rel) for rel in self._relations.values())

    def match(self, pattern: Atom,
              subst: Optional[Substitution] = None) -> Iterator[Substitution]:
        """Match a pattern against the pattern's relation."""
        rel = self._relations.get(pattern.relation)
        if rel is None:
            return iter(())
        return rel.match(pattern, subst)

    def snapshot_counts(self) -> Dict[str, int]:
        """Relation-name → cardinality map (useful in tests and benchmarks)."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def __repr__(self) -> str:
        return "Database(%s)" % (
            ", ".join(
                "%s:%d" % (name, len(rel))
                for name, rel in sorted(self._relations.items())
            )
        )
