"""Visual Question Answering scene data (Section 5.1 substitution).

The paper's VQA case study feeds the Figure 5 program with tuples produced
by an image-captioning system and Word2Vec similarities.  Neither is
available offline, so — per DESIGN.md §5 — this module encodes the concrete
values the paper itself reports:

- the captured image facts of **Table 3** (horse color brown 1, horse in
  field 0.88, cloud in sky 0.85, building with roof 0.5, cross on
  building 1);
- the quoted similarities ("barn" vs cross/horse/cloud = 0.30/0.35/0.33,
  "church" vs cross/horse/cloud = 0.09/0.19/0.01);
- the debugging narrative of Queries 1A-1C: on the modified image,
  ``ans("ID1","barn")`` still beats ``ans("ID1","church")`` *until*
  ``sim("church","cross")`` is raised to ≈0.51, at which point church wins.

Three scenes are provided: :func:`original_scene` (horses photo — barn is
the *correct* answer), :func:`modified_scene` (cross replaces the horses —
barn winning is now a bug), and :func:`fixed_scene` (similarity repaired).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..datalog.ast import Fact, Program
from ..datalog.parser import parse_program
from ..datalog.terms import atom as make_atom
from .programs import VQA_RULES

#: The image identifier used throughout the case study.
IMAGE_ID = "ID1"

#: Dictionary words considered as candidate answers ("equal weight to all
#: words in the dictionary such that the predicted result is unbiased").
DICTIONARY_WORDS: Tuple[str, ...] = ("barn", "church", "house", "stable")
WORD_PRIOR = 0.5


class VQAScene:
    """One VQA input instance: question, image facts, similarities."""

    def __init__(self, name: str) -> None:
        self.name = name
        # (subject, relation, object) -> probability
        self.image_facts: Dict[Tuple[str, str, str], float] = {}
        # (question-focus, question-relation, wh-word) -> probability
        self.question_facts: Dict[Tuple[str, str, str], float] = {}
        # (word_a, word_b) -> similarity; stored directed, mirrored on build
        self.similarities: Dict[Tuple[str, str], float] = {}
        self.words: Dict[str, float] = {}

    def add_image(self, subject: str, relation: str, obj: str,
                  probability: float) -> None:
        self.image_facts[(subject, relation, obj)] = probability

    def add_question(self, focus: str, relation: str, wh: str,
                     probability: float = 1.0) -> None:
        self.question_facts[(focus, relation, wh)] = probability

    def add_similarity(self, left: str, right: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError("Similarity must be in [0,1]")
        self.similarities[(left, right)] = value

    def add_word(self, word: str, prior: float = WORD_PRIOR) -> None:
        self.words[word] = prior

    def set_similarity(self, left: str, right: str, value: float) -> None:
        """Update a similarity (used by the Query 1C fix)."""
        self.add_similarity(left, right, value)

    def copy(self, name: str) -> "VQAScene":
        clone = VQAScene(name)
        clone.image_facts = dict(self.image_facts)
        clone.question_facts = dict(self.question_facts)
        clone.similarities = dict(self.similarities)
        clone.words = dict(self.words)
        return clone

    def to_facts(self) -> List[Fact]:
        """Materialise the scene as probabilistic base tuples.

        Similarities are mirrored (sim is symmetric) and every word gets
        the identity similarity sim(w, w) = 1.0, as Word2Vec would give.
        """
        facts: List[Fact] = []
        for word, prior in sorted(self.words.items()):
            facts.append(Fact(make_atom("word", IMAGE_ID, word), prior))
        for (focus, relation, wh), p in sorted(self.question_facts.items()):
            facts.append(
                Fact(make_atom("hasQ", IMAGE_ID, focus, relation, wh), p))
        for (subject, relation, obj), p in sorted(self.image_facts.items()):
            facts.append(
                Fact(make_atom("hasImg", IMAGE_ID, subject, relation, obj), p))
        mirrored: Dict[Tuple[str, str], float] = {}
        vocabulary = set()
        for (left, right), value in self.similarities.items():
            mirrored[(left, right)] = value
            mirrored.setdefault((right, left), value)
            vocabulary.update((left, right))
        vocabulary.update(self.words)
        for (subject, relation, obj) in self.image_facts:
            vocabulary.update((subject, relation, obj))
        for (focus, relation, wh) in self.question_facts:
            vocabulary.update((focus, relation))
        for word in vocabulary:
            mirrored.setdefault((word, word), 1.0)
        for (left, right), value in sorted(mirrored.items()):
            facts.append(Fact(make_atom("sim", left, right), value))
        return facts

    def to_program(self) -> Program:
        """Figure 5 rules plus this scene's tuples."""
        program = parse_program(VQA_RULES)
        for fact in self.to_facts():
            program.add(fact)
        return program

    def __repr__(self) -> str:
        return "VQAScene(%r, %d img, %d sim)" % (
            self.name, len(self.image_facts), len(self.similarities),
        )


def _base_scene(name: str) -> VQAScene:
    """Question, dictionary, and similarity data shared by all scenes."""
    scene = VQAScene(name)
    for word in DICTIONARY_WORDS:
        scene.add_word(word)
    # "What is the building in the background?"
    scene.add_question("background", "building", "WHAT", 1.0)

    # Word2Vec-style similarities quoted in Section 5.1.
    scene.add_similarity("barn", "cross", 0.30)
    scene.add_similarity("barn", "horse", 0.35)
    scene.add_similarity("barn", "cloud", 0.33)
    scene.add_similarity("church", "cross", 0.09)
    scene.add_similarity("church", "horse", 0.19)
    scene.add_similarity("church", "cloud", 0.01)

    # Similarities linking the question words to image vocabulary
    # (Figure 4 shows sim("building","in") and sim("background","background")
    # participating in the top derivation).
    scene.add_similarity("building", "in", 0.45)
    scene.add_similarity("building", "on", 0.60)
    scene.add_similarity("building", "with", 0.35)
    scene.add_similarity("background", "field", 0.20)
    scene.add_similarity("background", "sky", 0.20)
    scene.add_similarity("background", "building", 0.70)
    scene.add_similarity("barn", "building", 0.50)
    scene.add_similarity("church", "building", 0.50)
    scene.add_similarity("house", "building", 0.45)
    scene.add_similarity("stable", "building", 0.30)
    scene.add_similarity("house", "horse", 0.10)
    scene.add_similarity("house", "cross", 0.05)
    scene.add_similarity("stable", "horse", 0.30)
    scene.add_similarity("stable", "cross", 0.03)

    # Low-probability WHAT-similarities let rule r3 fire occasionally,
    # giving the provenance its "other derivations" branches (Figure 4).
    scene.add_similarity("WHAT", "field", 0.05)
    scene.add_similarity("WHAT", "sky", 0.05)
    scene.add_similarity("WHAT", "background", 0.05)
    return scene


def original_scene() -> VQAScene:
    """The horses-in-front-of-a-barn photo: barn is the right answer."""
    scene = _base_scene("original")
    scene.add_image("horse", "in", "background", 0.95)
    scene.add_image("horse", "color", "brown", 1.0)
    scene.add_image("cloud", "in", "sky", 0.85)
    scene.add_image("building", "with", "roof", 0.5)
    # Similarities between answer words and this scene's objects.
    scene.add_similarity("barn", "background", 0.20)
    scene.add_similarity("church", "background", 0.05)
    return scene


def modified_scene() -> VQAScene:
    """Table 3: the horses are replaced by a cross (a church photo).

    The program *should* now answer church, but the quoted similarity data
    still favours barn — the bug Queries 1B/1C debug.
    """
    scene = _base_scene("modified")
    scene.add_image("horse", "color", "brown", 1.0)
    scene.add_image("horse", "in", "field", 0.88)
    scene.add_image("cloud", "in", "sky", 0.85)
    scene.add_image("building", "with", "roof", 0.5)
    scene.add_image("cross", "on", "building", 1.0)
    return scene


#: The repaired similarity value Query 1C computes: 0.09 + 0.42 = 0.51.
FIXED_CHURCH_CROSS_SIMILARITY = 0.51


def fixed_scene() -> VQAScene:
    """The modified scene after the Query 1C repair.

    ``sim("church","cross")`` is raised from 0.09 to 0.51 (the Modification
    Query's answer), after which church out-scores barn.
    """
    scene = modified_scene().copy("fixed")
    scene.set_similarity("church", "cross", FIXED_CHURCH_CROSS_SIMILARITY)
    # The repaired Word2Vec model also slightly demotes barn-vs-cross
    # ("we then updated the word similarity using Word2Vec").
    scene.set_similarity("barn", "cross", 0.25)
    return scene
