"""Retry policies and circuit breakers: pure decision logic, fake clocks."""

import random

import pytest

from repro.core.errors import (
    BudgetExceededError,
    InferenceConfigurationError,
    TransientInferenceError,
    is_transient,
)
from repro.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
)
from repro.resilience.breaker import BreakerBoard
from repro.resilience.retry import NO_RETRY


class TestTaxonomy:
    def test_transient_classification(self):
        assert is_transient(TransientInferenceError("flake"))
        assert is_transient(OSError("worker died"))

    def test_permanent_classification(self):
        assert not is_transient(BudgetExceededError("blown"))
        assert not is_transient(InferenceConfigurationError("bad samples"))
        assert not is_transient(TimeoutError("too slow"))
        assert not is_transient(ValueError("nope"))

    def test_compat_bases(self):
        # Historical call sites catch the builtin bases.
        assert isinstance(BudgetExceededError("x"), RuntimeError)
        assert isinstance(InferenceConfigurationError("x"), ValueError)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_should_retry_only_transient(self):
        policy = RetryPolicy(max_attempts=3)
        flake = TransientInferenceError("flake")
        assert policy.should_retry(flake, 1)
        assert policy.should_retry(flake, 2)
        assert not policy.should_retry(flake, 3)  # attempts exhausted
        assert not policy.should_retry(BudgetExceededError("blown"), 1)

    def test_no_retry_sentinel(self):
        assert not NO_RETRY.should_retry(TransientInferenceError("x"), 1)

    def test_delay_grows_and_clamps(self):
        policy = RetryPolicy(backoff_seconds=0.1, multiplier=2.0,
                             max_backoff_seconds=0.3, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # clamped
        assert policy.delay(9) == pytest.approx(0.3)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(backoff_seconds=0.1, multiplier=1.0, jitter=0.5)
        rng = random.Random(7)
        for _ in range(100):
            assert 0.05 <= policy.delay(1, rng) <= 0.15

    def test_custom_predicate(self):
        policy = RetryPolicy(retry_on=lambda exc: isinstance(exc, KeyError))
        assert policy.should_retry(KeyError("k"), 1)
        assert not policy.should_retry(TransientInferenceError("x"), 1)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def _tripped(self, clock):
        breaker = CircuitBreaker("exact", BreakerPolicy(
            failure_threshold=0.5, window_size=4, min_calls=4,
            cooldown_seconds=10.0), clock=clock)
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        return breaker

    def test_stays_closed_below_min_calls(self):
        breaker = CircuitBreaker("exact", BreakerPolicy(min_calls=4),
                                 clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.before_call()  # admitted

    def test_trips_at_failure_rate(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        assert breaker.state == "open"
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        clock.now += 11.0
        assert breaker.state == "half-open"
        breaker.before_call()  # the single probe is admitted
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # second concurrent caller refused
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.before_call()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        clock.now += 11.0
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_to_dict(self):
        breaker = self._tripped(FakeClock())
        document = breaker.to_dict()
        assert document["backend"] == "exact"
        assert document["state"] == "open"
        assert document["trips"] == 1


class TestBreakerBoard:
    def test_breakers_are_memoised_per_backend(self):
        board = BreakerBoard(BreakerPolicy(), clock=FakeClock())
        assert board.breaker("exact") is board.breaker("exact")
        assert board.breaker("exact") is not board.breaker("bdd")

    def test_to_dict_and_reset(self):
        board = BreakerBoard(BreakerPolicy(), clock=FakeClock())
        board.breaker("exact").record_failure()
        assert set(board.to_dict()) == {"exact"}
        board.reset()
        assert board.to_dict() == {}
