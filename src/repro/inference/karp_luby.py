"""Karp–Luby unbiased estimator for DNF probability [14].

Naive Monte-Carlo needs Ω(1/P[λ]) samples to see a single success, which is
hopeless for low-probability queries.  The Karp–Luby scheme samples from
the *union space* instead:

1. pick monomial ``mᵢ`` with probability P[mᵢ] / Σⱼ P[mⱼ],
2. draw an assignment conditioned on ``mᵢ`` being true,
3. score 1 iff ``mᵢ`` is the *first* (canonical order) satisfied monomial.

The expectation of the score times Σⱼ P[mⱼ] is exactly P[λ], and the
relative error is bounded independently of how small P[λ] is — the
coverage-algorithm guarantee of Karp & Luby [14].

The paper uses plain Monte-Carlo; this estimator is included as the
principled alternative and is exercised by the inference ablation bench.
"""

from __future__ import annotations

import random
from typing import Optional, Union

import numpy as np

from ..provenance.polynomial import Polynomial, ProbabilityMap
from .montecarlo import MonteCarloEstimate


def karp_luby_probability(polynomial: Polynomial,
                          probabilities: ProbabilityMap,
                          samples: int = 10000,
                          seed: Optional[int] = None,
                          rng: Optional[Union[random.Random,
                                              np.random.Generator]] = None
                          ) -> MonteCarloEstimate:
    """Unbiased Karp–Luby estimate of P[λ].

    Returns a :class:`MonteCarloEstimate` whose ``value`` is the estimate;
    ``hits`` counts successful trials (first-satisfier matches).  Each
    trial is a Bernoulli indicator scaled by the constant union weight
    W = Σⱼ P[mⱼ], so the estimate is ``W · hits/samples`` and the standard
    error is ``W · √(p̂(1−p̂)/n)`` (the estimate's ``scale`` is W).

    The returned ``value`` is deliberately *not* clamped into [0, 1]: when
    W > 1 a single run can land above 1, and clamping would bias the mean
    of repeated estimates below the true probability.  Use
    ``estimate.value_clamped`` where a well-formed probability is needed.

    Runs on the bitset-packed kernel (:mod:`repro.inference.kernel`):
    monomial choice, the conditioned assignment draw, and the
    first-satisfier test (in the kernel's canonical monomial order) are
    all vectorized over the sample batch.
    """
    from .kernel import kernel_karp_luby  # lazy: kernel imports montecarlo

    if isinstance(rng, random.Random):
        rng = np.random.default_rng(rng.getrandbits(128))
    return kernel_karp_luby(polynomial, probabilities, samples=samples,
                            seed=seed, rng=rng)


def union_bound(polynomial: Polynomial,
                probabilities: ProbabilityMap) -> float:
    """Σⱼ P[mⱼ], clipped to 1 — the (loose) union upper bound on P[λ].

    This is also the normalising constant of the Karp–Luby sampler and the
    quantity the paper's Table 2 influence numbers appear to have used in
    place of the inclusion–exclusion probability (see DESIGN.md §4).
    """
    total = sum(m.probability(probabilities) for m in polynomial.monomials)
    return min(1.0, total)
