"""Ablation — probability backends: exact vs BDD vs MC vs parallel vs KL.

DESIGN.md §6: accuracy/time tradeoff across the five interchangeable
inference backends, on two workloads — the small Acquaintance polynomial
(exact methods shine) and the large mutual-trust polynomial (sampling
methods required; exact methods timed only if feasible).
"""

import time

from repro import P3
from repro.data import acquaintance_program
from repro.inference import (
    bdd_probability,
    exact_probability,
    karp_luby_probability,
    monte_carlo_probability,
    parallel_probability,
)

from reporting import record_table
from workloads import query_workload

SAMPLES = 20000


def _time(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_ablation_inference_small(benchmark):
    p3 = P3(acquaintance_program())
    p3.evaluate()
    poly = p3.polynomial_of("know", "Ben", "Elena")
    probs = p3.probabilities

    exact, exact_time = _time(lambda: exact_probability(poly, probs))
    rows = [["exact (Shannon)", exact, 0.0, 1000 * exact_time]]
    for name, fn in [
        ("bdd", lambda: bdd_probability(poly, probs)),
        ("mc", lambda: monte_carlo_probability(
            poly, probs, SAMPLES, seed=1).value),
        ("parallel", lambda: parallel_probability(
            poly, probs, SAMPLES, seed=1).value),
        ("karp-luby", lambda: karp_luby_probability(
            poly, probs, SAMPLES, seed=1).value),
    ]:
        value, elapsed = _time(fn)
        rows.append([name, value, abs(value - exact), 1000 * elapsed])
        assert abs(value - exact) < 0.02

    record_table(
        "ablation_inference_small",
        "Ablation: inference backends on know(Ben,Elena) "
        "(exact P = %.5f)" % exact,
        ["backend", "P", "abs error", "time (ms)"],
        rows,
    )
    benchmark.pedantic(exact_probability, args=(poly, probs),
                       rounds=5, iterations=1)


def test_ablation_inference_large(benchmark):
    p3, key, poly = query_workload()
    probs = p3.probabilities

    reference, ref_time = _time(lambda: parallel_probability(
        poly, probs, 200000, seed=9).value)

    rows = [["parallel (200k ref)", reference, 0.0, 1000 * ref_time]]
    for name, fn in [
        ("mc (5k)", lambda: monte_carlo_probability(
            poly, probs, 5000, seed=1).value),
        ("parallel (20k)", lambda: parallel_probability(
            poly, probs, SAMPLES, seed=1).value),
        ("karp-luby (5k)", lambda: karp_luby_probability(
            poly, probs, 5000, seed=1).value),
    ]:
        value, elapsed = _time(fn)
        rows.append([name, value, abs(value - reference), 1000 * elapsed])
        assert abs(value - reference) < 0.05

    record_table(
        "ablation_inference_large",
        "Ablation: inference backends on %s (%d monomials)"
        % (key, len(poly)),
        ["backend", "P", "abs error vs ref", "time (ms)"],
        rows,
    )
    benchmark.pedantic(
        parallel_probability, args=(poly, probs, SAMPLES),
        kwargs={"seed": 1}, rounds=3, iterations=1)
