"""Behavioral tests for the bitset sampling kernel.

Covers the three properties the vectorization must not break:
statistical agreement with the pure-Python sequential baseline, estimate
determinism across worker counts, and resource-budget enforcement inside
the vectorized path.
"""

import time

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.core.errors import BudgetExceededError
from repro.inference.exact import exact_probability
from repro.inference.kernel import (
    SHARD_SIZE,
    kernel_karp_luby,
    kernel_probability,
)
from repro.inference.montecarlo import sequential_probability
from repro.inference.registry import get_backend
from repro.inference.request import InferenceRequest
from repro.resilience.budgets import ResourceBudget, activate_budget


@pytest.fixture
def case():
    poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
    return poly, random_probabilities(poly, seed=9)


class TestStatisticalEquivalence:
    def test_kernel_matches_sequential_baseline(self, case):
        poly, probs = case
        truth = exact_probability(poly, probs)
        vectorized = kernel_probability(poly, probs, samples=40000, seed=1)
        baseline = sequential_probability(poly, probs, samples=8000, seed=1)
        # Both estimators target the same exact value; each must sit
        # within its own (generous) sampling band.
        assert vectorized.value == pytest.approx(truth, abs=0.015)
        assert baseline.value == pytest.approx(truth, abs=0.03)
        assert abs(vectorized.value - baseline.value) < 0.04

    def test_karp_luby_matches_exact(self, case):
        poly, probs = case
        truth = exact_probability(poly, probs)
        estimate = kernel_karp_luby(poly, probs, samples=40000, seed=1)
        assert estimate.value == pytest.approx(truth, abs=0.015)


class TestWorkerDeterminism:
    """(samples, seed) fixes the estimate for *any* worker count: the
    shard layout depends only on the sample budget, workers just decide
    how concurrently the same shards execute."""

    SAMPLES = 3 * SHARD_SIZE + 500  # forces the sharded path, ragged tail

    def test_mc_identical_across_worker_counts(self, case):
        poly, probs = case
        values = {
            kernel_probability(poly, probs, samples=self.SAMPLES,
                               seed=7, workers=workers).value
            for workers in (1, 2, 4)
        }
        assert len(values) == 1

    def test_karp_luby_identical_across_worker_counts(self, case):
        poly, probs = case
        values = {
            kernel_karp_luby(poly, probs, samples=self.SAMPLES,
                             seed=7, workers=workers).value
            for workers in (1, 2, 4)
        }
        assert len(values) == 1

    def test_seeded_runs_reproduce(self, case):
        poly, probs = case
        first = kernel_probability(poly, probs, samples=4000, seed=5)
        second = kernel_probability(poly, probs, samples=4000, seed=5)
        assert first.value == second.value


class TestBudgetEnforcement:
    def test_impossible_budget_trips_before_allocation(self, case):
        poly, probs = case
        with activate_budget(ResourceBudget(max_compiled_bytes=4)):
            with pytest.raises(BudgetExceededError):
                kernel_probability(poly, probs, samples=100, seed=0)

    def test_budget_flows_through_backend_request(self, case):
        poly, probs = case
        request = InferenceRequest(
            samples=100, seed=0,
            budget=ResourceBudget(max_compiled_bytes=4))
        with pytest.raises(BudgetExceededError):
            get_backend("mc").run(poly, probs, request)

    def test_chunk_capping_budget_preserves_the_estimate(self, case):
        # A tight-but-feasible cap only shrinks the chunk size; the draw
        # is the same Generator stream, so the estimate is bit-identical.
        poly, probs = case
        unbudgeted = kernel_probability(poly, probs, samples=2000, seed=3)
        with activate_budget(ResourceBudget(max_compiled_bytes=2048)):
            capped = kernel_probability(poly, probs, samples=2000, seed=3)
        assert capped.value == unbudgeted.value


class TestDeadline:
    def test_expired_deadline_truncates_but_never_returns_empty(self, case):
        poly, probs = case
        requested = 4 * SHARD_SIZE
        estimate = kernel_probability(
            poly, probs, samples=requested, seed=1,
            deadline=time.monotonic() - 1.0)
        # The first shard always draws one chunk so the estimate is
        # well-defined; everything after the deadline is skipped.
        assert 0 < estimate.samples < requested
        assert 0.0 <= estimate.value <= 1.0

    def test_far_deadline_draws_everything(self, case):
        poly, probs = case
        estimate = kernel_probability(
            poly, probs, samples=2000, seed=1,
            deadline=time.monotonic() + 60.0)
        assert estimate.samples == 2000


class TestKarpLubyBudgetContract:
    """Karp–Luby chunk layout is a pure function of the sample budget:
    a memory budget may veto a run, but never reshape (and so reseed)
    it.  See ``_kl_chunk_rows``."""

    def test_estimate_is_budget_independent(self, case):
        poly, probs = case
        free = kernel_karp_luby(poly, probs, samples=2000, seed=3)
        with activate_budget(ResourceBudget(max_compiled_bytes=1 << 20)):
            budgeted = kernel_karp_luby(poly, probs, samples=2000, seed=3)
        assert budgeted.value == free.value
        assert budgeted.samples == free.samples

    def test_infeasible_chunk_raises_instead_of_shrinking(self, case):
        # Big enough for compilation, too small for one 2000-row chunk:
        # the contract demands a typed refusal, not a silently different
        # sample stream.
        poly, probs = case
        with activate_budget(ResourceBudget(max_compiled_bytes=4096)):
            with pytest.raises(BudgetExceededError):
                kernel_karp_luby(poly, probs, samples=2000, seed=3)
