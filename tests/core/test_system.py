"""Unit tests for the P3 facade."""

import pytest

from repro import P3, P3Config
from repro.core.errors import (
    NotEvaluatedError,
    UnknownLiteralError,
    UnknownTupleError,
)
from repro.data import ACQUAINTANCE
from repro.provenance.polynomial import rule_literal, tuple_literal


@pytest.fixture()
def fresh():
    return P3.from_source(ACQUAINTANCE)


class TestLifecycle:
    def test_queries_require_evaluation(self, fresh):
        with pytest.raises(NotEvaluatedError):
            fresh.probability_of("know", "Ben", "Elena")
        with pytest.raises(NotEvaluatedError):
            _ = fresh.graph

    def test_evaluate_idempotent(self, fresh):
        first = fresh.evaluate()
        second = fresh.evaluate()
        assert first is second

    def test_evaluated_flag(self, fresh):
        assert not fresh.evaluated
        fresh.evaluate()
        assert fresh.evaluated

    def test_repr_mentions_state(self, fresh):
        assert "not evaluated" in repr(fresh)
        fresh.evaluate()
        assert "not evaluated" not in repr(fresh)


class TestConstruction:
    def test_from_file(self, tmp_path):
        path = tmp_path / "program.pl"
        path.write_text(ACQUAINTANCE)
        p3 = P3.from_file(str(path))
        p3.evaluate()
        assert p3.holds("know", "Ben", "Elena")

    def test_from_program_object(self):
        from repro.data import acquaintance_program
        p3 = P3(acquaintance_program())
        p3.evaluate()
        assert p3.holds("know", "Steve", "Elena")


class TestTupleAddressing:
    def test_tuple_key_format(self):
        assert P3.tuple_key("know", "Ben", "Elena") == 'know("Ben","Elena")'
        assert P3.tuple_key("trust", 1, 2) == "trust(1,2)"

    def test_relation_plus_values(self, acquaintance):
        by_values = acquaintance.probability_of("know", "Ben", "Elena")
        by_key = acquaintance.probability_of('know("Ben","Elena")')
        assert by_values == by_key

    def test_holds(self, acquaintance):
        assert acquaintance.holds("know", "Ben", "Elena")
        assert acquaintance.holds("live", "Steve", "DC")
        assert not acquaintance.holds("know", "Mary", "Ben")

    def test_unknown_tuple_raises(self, acquaintance):
        with pytest.raises(UnknownTupleError):
            acquaintance.polynomial_of("know", "Mary", "Ben")
        with pytest.raises(UnknownTupleError):
            acquaintance.explain("nothing", 1)


class TestProbabilities:
    def test_known_values(self, acquaintance):
        assert acquaintance.probability_of(
            "know", "Ben", "Elena") == pytest.approx(0.16384)
        assert acquaintance.probability_of(
            "know", "Steve", "Elena") == pytest.approx(0.8192)

    def test_base_tuple_probability(self, acquaintance):
        assert acquaintance.probability_of(
            "like", "Steve", "Veggies") == pytest.approx(0.4)

    def test_method_override(self, acquaintance):
        estimate = acquaintance.probability_of(
            "know", "Ben", "Elena", method="parallel")
        assert estimate == pytest.approx(0.16384, abs=0.02)

    def test_polynomial_cache(self, acquaintance):
        first = acquaintance.polynomial_of("know", "Ben", "Elena")
        second = acquaintance.polynomial_of("know", "Ben", "Elena")
        assert first is second

    def test_hop_limit_distinct_cache_entries(self, acquaintance):
        full = acquaintance.polynomial_of("know", "Ben", "Elena")
        limited = acquaintance.polynomial_of(
            "know", "Ben", "Elena", hop_limit=1)
        assert full is not limited


class TestLiteralResolution:
    def test_rule_label(self, acquaintance):
        assert acquaintance.literal("r3") == rule_literal("r3")

    def test_base_tuple_key(self, acquaintance):
        key = 'like("Steve","Veggies")'
        assert acquaintance.literal(key) == tuple_literal(key)

    def test_unknown_literal(self, acquaintance):
        with pytest.raises(UnknownLiteralError):
            acquaintance.literal("nonexistent")


class TestQueryPlumbing:
    def test_explain(self, acquaintance):
        explanation = acquaintance.explain("know", "Ben", "Elena")
        assert explanation.derivation_count == 2

    def test_sufficient_provenance(self, acquaintance):
        result = acquaintance.sufficient_provenance(
            "know", "Ben", "Elena", epsilon=0.05, method="naive")
        assert len(result.sufficient) == 1

    def test_influence_filters(self, acquaintance):
        rules = acquaintance.influence("know", "Ben", "Elena", kind="rule")
        assert all(s.literal.is_rule for s in rules)
        live_only = acquaintance.influence(
            "know", "Ben", "Elena", relation="live")
        assert all(s.literal.key.startswith("live(") for s in live_only)

    def test_modify_only_rules(self, acquaintance):
        plan = acquaintance.modify(
            "know", "Ben", "Elena", target=0.3, only_rules=True)
        assert all(step.literal.is_rule for step in plan.steps)

    def test_modify_only_tuples(self, trust_fragment):
        plan = trust_fragment.modify(
            "mutualTrustPath", 1, 6, target=0.5, only_tuples=True)
        assert all(step.literal.is_tuple for step in plan.steps)

    def test_derived_atoms_iteration(self, acquaintance):
        know = set(map(str, acquaintance.derived_atoms("know")))
        assert 'know("Ben","Elena")' in know


class TestConfig:
    def test_defaults(self):
        config = P3Config()
        assert config.probability_method == "exact"
        assert config.samples == 10000

    def test_validation(self):
        with pytest.raises(ValueError):
            P3Config(samples=0)
        with pytest.raises(ValueError):
            P3Config(hop_limit=0)

    def test_replace(self):
        config = P3Config(samples=500)
        updated = config.replace(seed=7)
        assert updated.samples == 500
        assert updated.seed == 7
        assert config.seed is None

    def test_replace_rejects_unknown(self):
        with pytest.raises(TypeError):
            P3Config().replace(bogus=1)

    def test_hop_limit_flows_to_polynomials(self):
        source = """
            t1 0.5: edge(1,2).
            t2 0.5: edge(2,3).
            t3 0.5: edge(3,4).
            r1 1.0: path(X,Y) :- edge(X,Y).
            r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
        """
        limited = P3.from_source(source, P3Config(hop_limit=2))
        limited.evaluate()
        assert limited.probability_of("path", 1, 4) == 0.0
        full = P3.from_source(source)
        full.evaluate()
        assert full.probability_of("path", 1, 4) == pytest.approx(0.125)

    def test_capture_tables_toggle(self):
        p3 = P3.from_source(ACQUAINTANCE, P3Config(capture_tables=False))
        p3.evaluate()
        assert p3.database.count("prov_") == 0
        # Live-recorded graph still works.
        assert p3.probability_of("know", "Ben", "Elena") == pytest.approx(
            0.16384)

    def test_seeded_estimation_reproducible(self):
        config = P3Config(probability_method="mc", samples=2000, seed=11)
        first = P3.from_source(ACQUAINTANCE, config)
        first.evaluate()
        second = P3.from_source(ACQUAINTANCE, config)
        second.evaluate()
        assert first.probability_of("know", "Ben", "Elena") == \
            second.probability_of("know", "Ben", "Elena")
