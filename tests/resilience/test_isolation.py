"""Process-isolated inference workers: hard cancellation, crash
containment, memory caps, and the executor/ladder wiring around them.

Worker processes are spawn-based (an interpreter boot each), so the
tests share one module-scoped pool wherever possible and keep fault
rounds small.
"""

import time

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.core.config import P3Config
from repro.core.errors import (
    WorkerCrashError,
    WorkerMemoryError,
    WorkerTimeoutError,
)
from repro.core.system import P3
from repro.data import ACQUAINTANCE
from repro.exec.executor import QueryExecutor
from repro.inference.exact import exact_probability
from repro.resilience.chaos import (
    PROCESS_FAULT_CLASSES,
    run_process_chaos,
)
from repro.resilience.isolation import (
    ProcessWorkerPool,
    process_isolation_supported,
)
from repro.resilience.ladder import FallbackLadder, FallbackRung

POLY = make_polynomial(("a", "b"), ("b", "c"), ("d",))
PROBS = random_probabilities(POLY)
TRUTH = exact_probability(POLY, PROBS)

needs_processes = pytest.mark.skipif(
    not process_isolation_supported(),
    reason="process isolation requires POSIX kill/resource semantics")


# -- cheap, no-subprocess surface -------------------------------------------


class TestConfigSurface:
    def test_isolation_values_validated(self):
        assert P3Config(isolation="process").isolation == "process"
        assert P3Config().isolation == "thread"
        with pytest.raises(ValueError):
            P3Config(isolation="fibers")
        with pytest.raises(ValueError):
            P3Config(isolation_workers=0)
        with pytest.raises(ValueError):
            P3Config(worker_memory_bytes=-1)

    def test_replace_carries_isolation_fields(self):
        config = P3Config().replace(isolation="auto", isolation_workers=3,
                                    worker_memory_bytes=1 << 28)
        assert config.isolation == "auto"
        assert config.isolation_workers == 3
        assert config.worker_memory_bytes == 1 << 28

    def test_rung_isolation_roundtrip(self):
        rung = FallbackRung.coerce({"method": "exact",
                                    "isolation": "process"})
        assert rung.isolation == "process"
        assert rung.to_dict()["isolation"] == "process"
        with pytest.raises(ValueError):
            FallbackRung("exact", isolation="remote")

    def test_ladder_default_isolation_validated(self):
        with pytest.raises(ValueError):
            FallbackLadder([FallbackRung("exact")],
                           default_isolation="fibers")

    def test_fault_classes_mirror_worker_faults(self):
        from repro.resilience.isolation import WORKER_FAULTS
        assert PROCESS_FAULT_CLASSES == WORKER_FAULTS

    def test_pool_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ProcessWorkerPool(workers=0)
        with pytest.raises(ValueError):
            ProcessWorkerPool(memory_limit_bytes=0)


# -- the worker pool itself -------------------------------------------------


@needs_processes
class TestProcessWorkerPool:
    @pytest.fixture(scope="class")
    def pool(self):
        with ProcessWorkerPool(workers=2,
                               memory_limit_bytes=512 * 1024 * 1024) as pool:
            yield pool

    def test_exact_reading_matches_inprocess_truth(self, pool):
        reading = pool.submit("exact", POLY, PROBS)
        assert reading.value == pytest.approx(TRUTH, abs=1e-12)
        assert reading.exact

    def test_warm_worker_is_reused(self, pool):
        pool.submit("exact", POLY, PROBS)
        spawned = pool.stats()["spawned"]
        started = time.perf_counter()
        pool.submit("exact", POLY, PROBS)
        assert time.perf_counter() - started < 1.0  # no interpreter boot
        assert pool.stats()["spawned"] == spawned

    def test_sigkill_becomes_typed_crash_error(self, pool):
        with pytest.raises(WorkerCrashError) as excinfo:
            pool.submit("exact", POLY, PROBS, fault="kill9")
        assert excinfo.value.exitcode == -9
        assert excinfo.value.to_dict()["exitcode"] == -9
        # Containment: the pool answers the very next request.
        reading = pool.submit("exact", POLY, PROBS)
        assert reading.value == pytest.approx(TRUTH, abs=1e-12)
        assert pool.stats()["crashed"] >= 1

    def test_wedged_worker_is_hard_cancelled(self, pool):
        started = time.perf_counter()
        with pytest.raises(WorkerTimeoutError):
            pool.submit("exact", POLY, PROBS, timeout=0.8,
                        fault="wedge-native")
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0  # SIGKILL, not a join on the busy loop
        assert pool.stats()["killed"] >= 1
        reading = pool.submit("exact", POLY, PROBS)
        assert reading.value == pytest.approx(TRUTH, abs=1e-12)

    def test_memory_cap_becomes_typed_memory_error(self, pool):
        with pytest.raises(WorkerMemoryError) as excinfo:
            pool.submit("exact", POLY, PROBS, fault="oom")
        assert isinstance(excinfo.value, MemoryError)
        assert pool.stats()["memory_trips"] >= 1
        reading = pool.submit("exact", POLY, PROBS)
        assert reading.value == pytest.approx(TRUTH, abs=1e-12)

    def test_expired_deadline_fails_before_dispatch(self, pool):
        from repro.inference.request import InferenceRequest
        request = InferenceRequest(deadline=time.monotonic() - 1.0)
        with pytest.raises(WorkerTimeoutError):
            pool.submit("exact", POLY, PROBS, request=request)

    def test_unknown_fault_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.submit("exact", POLY, PROBS, fault="meteor")

    def test_pool_never_exceeds_worker_cap(self, pool):
        stats = pool.stats()
        assert stats["live"] <= stats["workers"] == 2


@needs_processes
def test_closed_pool_rejects_submissions():
    pool = ProcessWorkerPool(workers=1)
    pool.close()
    with pytest.raises(RuntimeError):
        pool.submit("exact", POLY, PROBS)
    assert pool.live_workers() == 0


# -- executor integration ---------------------------------------------------


@needs_processes
class TestExecutorIsolation:
    @pytest.fixture(scope="class")
    def system(self):
        p3 = P3.from_source(ACQUAINTANCE, config=P3Config(
            isolation="process", isolation_workers=1))
        p3.evaluate()
        return p3

    def test_process_isolation_matches_thread_answer(self, system):
        reference = P3.from_source(ACQUAINTANCE)
        reference.evaluate()
        expected = reference.probability_of('know("Ben","Elena")')
        with QueryExecutor(system, max_workers=1) as executor:
            assert executor.isolation == "process"
            value = executor.probability('know("Ben","Elena")',
                                         method="exact")
            assert value == pytest.approx(expected, abs=1e-12)
            # The pool was actually used and is visible in stats().
            pool_stats = executor.stats()["pool"]["isolation_workers"]
            assert pool_stats["requests"] >= 1
            assert pool_stats["live"] <= pool_stats["workers"]

    def test_auto_isolation_resolves_on_posix(self, system):
        config = P3Config(isolation="auto")
        p3 = P3.from_source(ACQUAINTANCE, config=config)
        p3.evaluate()
        with QueryExecutor(p3, max_workers=1) as executor:
            assert executor.isolation == "process"

    def test_outcome_documents_stay_well_formed(self, system):
        with QueryExecutor(system, max_workers=1) as executor:
            batch = executor.run(['know("Ben","Elena")',
                                  'know("Ben","Steve")'])
        for outcome in batch:
            assert outcome.ok, outcome.to_dict()
            assert (outcome.value is None) != (outcome.error is None)


# -- the chaos harness ------------------------------------------------------


@needs_processes
def test_process_chaos_round_is_fully_well_formed():
    report = run_process_chaos(seed=0, rounds=1, people=8)
    assert report.ok, report.to_dict()
    assert report.well_formed == report.exchanges
    for fault in PROCESS_FAULT_CLASSES:
        assert report.faults_observed[fault] == 1, fault
    # Bounded recovery: at most one respawn per worker-killing fault,
    # and no leaked processes beyond the configured pool size.
    assert report.pool["respawned"] <= report.respawn_bound
    assert report.pool["live"] <= report.pool["workers"]
    document = report.to_dict()
    assert document["kind"] == "process_chaos_report"
    import json
    json.dumps(document)
