"""Resource budgets: caps, the ambient meter, and pipeline enforcement."""

import pytest

from repro import P3, P3Config
from repro.core.errors import BudgetExceededError
from repro.data import ACQUAINTANCE
from repro.exec import QueryExecutor
from repro.provenance.extraction import extract_polynomial
from repro.resilience import ResourceBudget, activate_budget, active_meter
from repro.resilience.config import ResilienceConfig

KEY = 'know("Ben","Elena")'


@pytest.fixture()
def system():
    p3 = P3.from_source(ACQUAINTANCE)
    p3.evaluate()
    return p3


class TestResourceBudget:
    def test_rejects_non_positive_caps(self):
        with pytest.raises(ValueError):
            ResourceBudget(max_monomials=0)
        with pytest.raises(ValueError):
            ResourceBudget(max_node_visits=-1)

    def test_unbounded(self):
        assert ResourceBudget().unbounded
        assert not ResourceBudget(max_monomials=5).unbounded

    def test_to_dict_round_trip(self):
        budget = ResourceBudget(max_monomials=10, max_compiled_bytes=1 << 20)
        assert ResourceBudget(**budget.to_dict()).to_dict() == budget.to_dict()


class TestMeter:
    def test_node_visits_trip(self):
        meter = ResourceBudget(max_node_visits=2).meter()
        meter.count_visit()
        meter.count_visit()
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.count_visit()
        assert excinfo.value.resource == "node_visits"
        assert excinfo.value.limit == 2
        assert excinfo.value.used == 3

    def test_monomial_caps_carry_partial(self, system):
        polynomial = extract_polynomial(system.graph, KEY)
        meter = ResourceBudget(max_monomials=1).meter()
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.check_polynomial(polynomial)
        assert excinfo.value.resource == "monomials"
        assert excinfo.value.partial is polynomial
        assert excinfo.value.to_dict()["has_partial"] is True

    def test_width_cap(self, system):
        polynomial = extract_polynomial(system.graph, KEY)
        widest = max(len(monomial) for monomial in polynomial)
        meter = ResourceBudget(max_monomial_width=widest - 1).meter()
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.check_polynomial(polynomial)
        assert excinfo.value.resource == "monomial_width"

    def test_compiled_bytes_cap(self):
        meter = ResourceBudget(max_compiled_bytes=100).meter()
        meter.check_compiled_bytes(100)  # at the cap: fine
        with pytest.raises(BudgetExceededError):
            meter.check_compiled_bytes(101)


class TestAmbientActivation:
    def test_no_meter_by_default(self):
        assert active_meter() is None

    def test_activate_and_restore(self):
        budget = ResourceBudget(max_node_visits=10)
        with activate_budget(budget) as meter:
            assert active_meter() is meter
            assert meter.budget is budget
        assert active_meter() is None

    def test_none_and_unbounded_deactivate(self):
        with activate_budget(ResourceBudget(max_monomials=5)):
            with activate_budget(None):
                assert active_meter() is None
            with activate_budget(ResourceBudget()):
                assert active_meter() is None
            assert active_meter() is not None

    def test_nested_activations_shadow(self):
        outer = ResourceBudget(max_node_visits=1)
        inner = ResourceBudget(max_node_visits=99)
        with activate_budget(outer):
            with activate_budget(inner) as meter:
                assert meter.budget is inner
            assert active_meter().budget is outer

    def test_restores_on_raise(self):
        with pytest.raises(RuntimeError):
            with activate_budget(ResourceBudget(max_monomials=5)):
                raise RuntimeError("boom")
        assert active_meter() is None


class TestPipelineEnforcement:
    def test_extraction_honours_ambient_visit_budget(self, system):
        with activate_budget(ResourceBudget(max_node_visits=2)):
            with pytest.raises(BudgetExceededError) as excinfo:
                extract_polynomial(system.graph, KEY)
        assert excinfo.value.resource == "node_visits"

    def test_executor_budget_yields_sound_partial_outcome(self):
        # A blown extraction budget carries the last consistent partial
        # polynomial; probability specs degrade to its (lower-bound)
        # probability with an explicit marker instead of a bare error.
        p3 = P3.from_source(ACQUAINTANCE, config=P3Config(
            resilience=ResilienceConfig(
                budget=ResourceBudget(max_node_visits=2),
                fallback=False, breakers=False)))
        p3.evaluate()
        reference = P3.from_source(ACQUAINTANCE)
        reference.evaluate()
        exact = reference.probability_of(KEY)
        with QueryExecutor(p3) as executor:
            batch = executor.run([KEY])
        outcome = batch[0]
        assert outcome.error is None
        assert outcome.partial is True
        assert 0.0 <= outcome.value <= exact
        assert outcome.to_dict()["partial"] is True

    def test_executor_budget_without_partial_is_typed_error(self):
        # Non-probability specs cannot degrade to a partial answer: the
        # blown budget stays a typed error outcome.
        p3 = P3.from_source(ACQUAINTANCE, config=P3Config(
            resilience=ResilienceConfig(
                budget=ResourceBudget(max_node_visits=2),
                fallback=False, breakers=False)))
        p3.evaluate()
        with QueryExecutor(p3) as executor:
            batch = executor.run([
                {"kind": "explain", "key": KEY}])
        outcome = batch[0]
        assert outcome.error is not None
        assert isinstance(outcome.exception, BudgetExceededError)
        assert not outcome.partial

    def test_generous_budget_changes_nothing(self, system):
        reference = extract_polynomial(system.graph, KEY)
        with activate_budget(ResourceBudget(max_node_visits=10**6,
                                            max_monomials=10**6)):
            assert extract_polynomial(system.graph, KEY) == reference
