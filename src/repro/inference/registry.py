"""Uniform registry of P[λ] inference backends.

Every way this repo can compute or estimate the success probability of a
provenance polynomial is registered here under a stable name with one
uniform signature, so callers — the :func:`repro.inference.probability`
front door, the batch executor, and the differential audit harness
(:mod:`repro.audit`) — can enumerate, select, and cross-check backends
mechanically instead of hard-coding method lists.

A backend is an :class:`InferenceBackend`: a name, a kind (``"exact"`` or
``"sampling"``), an applicability predicate (brute force refuses large
polynomials, read-once refuses non-read-once structure), and a runner
returning a :class:`BackendReading` — the value plus, for sampling
backends, the standard error needed for statistically sound agreement
checking.

Registered backends
-------------------
===============  ========  ====================================================
name             kind      implementation
===============  ========  ====================================================
``brute-force``  exact     2ⁿ assignment enumeration (small polynomials only)
``exact``        exact     memoised Shannon expansion
``bdd``          exact     ROBDD compile + weighted model count
``read-once``    exact     linear-time over a read-once factorization
``mc``           sampling  sequential Monte-Carlo
``parallel``     sampling  numpy-vectorized Monte-Carlo
``karp-luby``    sampling  Karp–Luby union sampler (unbiased, value may be >1)
===============  ========  ====================================================
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .. import telemetry
from ..provenance.polynomial import Polynomial, ProbabilityMap
from ..provenance.readonce import is_read_once, read_once_probability
from .bdd import bdd_probability
from .exact import brute_force_probability, exact_probability
from .karp_luby import karp_luby_probability
from .montecarlo import monte_carlo_probability
from .parallel_mc import parallel_probability

#: Largest literal count the brute-force oracle accepts through the
#: registry (kept below its own hard limit so audits stay fast).
BRUTE_FORCE_LITERAL_LIMIT = 20

#: A backend runner: (polynomial, probabilities, samples, seed) → reading.
BackendFn = Callable[[Polynomial, ProbabilityMap, int, Optional[int]],
                     "BackendReading"]


class BackendReading:
    """One backend's answer: the value and (for sampling) its error."""

    __slots__ = ("backend", "value", "stderr", "exact")

    def __init__(self, backend: str, value: float,
                 stderr: Optional[float] = None,
                 exact: bool = True) -> None:
        self.backend = backend
        self.value = value
        self.stderr = stderr
        self.exact = exact

    @property
    def value_clamped(self) -> float:
        """The value clamped into [0, 1] (unbiased estimators can exceed 1)."""
        return min(1.0, max(0.0, self.value))

    def to_dict(self) -> dict:
        document: Dict[str, object] = {
            "backend": self.backend,
            "value": self.value,
            "exact": self.exact,
        }
        if self.stderr is not None:
            document["stderr"] = self.stderr
        return document

    def __repr__(self) -> str:
        if self.exact:
            return "BackendReading(%s, %.12f)" % (self.backend, self.value)
        return "BackendReading(%s, %.6f ± %.6f)" % (
            self.backend, self.value, self.stderr or 0.0)


class InferenceBackend:
    """One registered way to compute P[λ], with a uniform signature."""

    __slots__ = ("name", "kind", "description", "_fn", "_supports")

    KIND_EXACT = "exact"
    KIND_SAMPLING = "sampling"

    def __init__(self, name: str, kind: str, fn: BackendFn,
                 supports: Optional[Callable[[Polynomial], bool]] = None,
                 description: str = "") -> None:
        if kind not in (self.KIND_EXACT, self.KIND_SAMPLING):
            raise ValueError(
                "Backend kind must be 'exact' or 'sampling': %r" % kind)
        self.name = name
        self.kind = kind
        self.description = description
        self._fn = fn
        self._supports = supports

    @property
    def deterministic(self) -> bool:
        """Does the result depend only on (polynomial, probabilities)?"""
        return self.kind == self.KIND_EXACT

    def supports(self, polynomial: Polynomial) -> bool:
        """Can this backend evaluate the given polynomial?"""
        if self._supports is None:
            return True
        return self._supports(polynomial)

    def run(self, polynomial: Polynomial, probabilities: ProbabilityMap,
            samples: int = 10000,
            seed: Optional[int] = None) -> BackendReading:
        """Evaluate P[λ] and return a :class:`BackendReading`.

        With telemetry enabled, every call produces an ``infer.backend``
        span (backend name, polynomial size, sample budget, value, and —
        for sampling backends — standard error) and feeds the
        per-backend ``p3_infer_seconds`` latency histogram plus the
        ``p3_infer_calls_total`` / ``p3_infer_samples_total`` counters.
        """
        rt = telemetry.runtime()
        if not rt.enabled:
            return self._fn(polynomial, probabilities, samples, seed)
        sampling = self.kind == self.KIND_SAMPLING
        with rt.tracer.span("infer.backend", backend=self.name,
                            kind=self.kind,
                            monomials=len(polynomial)) as span:
            started = time.perf_counter()
            reading = self._fn(polynomial, probabilities, samples, seed)
            elapsed = time.perf_counter() - started
            span.set_attribute("value", reading.value)
            if sampling:
                span.set_attribute("samples", samples)
                if reading.stderr is not None:
                    span.set_attribute("stderr", reading.stderr)
        rt.metrics.histogram(
            "p3_infer_seconds",
            help="Inference latency per backend call",
            labelnames=("backend",)).observe(elapsed, backend=self.name)
        rt.metrics.counter(
            "p3_infer_calls_total", help="Backend invocations",
            labelnames=("backend",)).inc(backend=self.name)
        if sampling:
            rt.metrics.counter(
                "p3_infer_samples_total",
                help="Monte-Carlo samples drawn, by backend",
                labelnames=("backend",)).inc(samples, backend=self.name)
        return reading

    def __repr__(self) -> str:
        return "InferenceBackend(%r, %s)" % (self.name, self.kind)


_REGISTRY: Dict[str, InferenceBackend] = {}


def register_backend(backend: InferenceBackend,
                     replace: bool = False) -> InferenceBackend:
    """Add a backend to the registry (``replace=True`` to overwrite)."""
    if backend.name in _REGISTRY and not replace:
        raise ValueError("Backend %r is already registered" % backend.name)
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> InferenceBackend:
    """Look a backend up by name; raises ``ValueError`` when unknown."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            "Unknown probability method %r (expected one of %s)"
            % (name, ", ".join(backend_names())))
    return backend


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def exact_backend_names() -> Tuple[str, ...]:
    """Names of the registered exact backends, sorted."""
    return tuple(sorted(
        name for name, backend in _REGISTRY.items()
        if backend.kind == InferenceBackend.KIND_EXACT))


def sampling_backend_names() -> Tuple[str, ...]:
    """Names of the registered sampling backends, sorted."""
    return tuple(sorted(
        name for name, backend in _REGISTRY.items()
        if backend.kind == InferenceBackend.KIND_SAMPLING))


def available_backends(polynomial: Optional[Polynomial] = None,
                       names: Optional[List[str]] = None
                       ) -> List[InferenceBackend]:
    """Backends (optionally a named subset) applicable to ``polynomial``."""
    selected = [get_backend(name) for name in names] if names is not None \
        else [_REGISTRY[name] for name in backend_names()]
    if polynomial is None:
        return selected
    return [backend for backend in selected if backend.supports(polynomial)]


def is_deterministic(name: str) -> bool:
    """Is ``name`` a registered backend whose result ignores samples/seed?

    Unknown names answer ``False`` (the conservative choice for cache-key
    construction: unrecognised methods keep their sampling parameters).
    """
    backend = _REGISTRY.get(name)
    return backend is not None and backend.deterministic


@contextlib.contextmanager
def override_backend(name: str, fn: BackendFn) -> Iterator[InferenceBackend]:
    """Temporarily replace a backend's implementation.

    Exists for fault injection: the audit harness's own test suite swaps a
    known bug in (e.g. the historical Karp–Luby clamp) and asserts the
    differential oracle catches it.  The original backend is restored on
    exit no matter what.
    """
    original = get_backend(name)
    replacement = InferenceBackend(
        name, original.kind, fn, supports=original._supports,
        description="override of %s" % name)
    _REGISTRY[name] = replacement
    try:
        yield replacement
    finally:
        _REGISTRY[name] = original


# -- built-in backends ---------------------------------------------------------

def _run_brute_force(polynomial: Polynomial, probabilities: ProbabilityMap,
                     samples: int, seed: Optional[int]) -> BackendReading:
    return BackendReading(
        "brute-force", brute_force_probability(polynomial, probabilities))


def _run_exact(polynomial: Polynomial, probabilities: ProbabilityMap,
               samples: int, seed: Optional[int]) -> BackendReading:
    return BackendReading(
        "exact", exact_probability(polynomial, probabilities))


def _run_bdd(polynomial: Polynomial, probabilities: ProbabilityMap,
             samples: int, seed: Optional[int]) -> BackendReading:
    return BackendReading(
        "bdd", bdd_probability(polynomial, probabilities))


def _run_read_once(polynomial: Polynomial, probabilities: ProbabilityMap,
                   samples: int, seed: Optional[int]) -> BackendReading:
    return BackendReading(
        "read-once", read_once_probability(polynomial, probabilities))


def _run_mc(polynomial: Polynomial, probabilities: ProbabilityMap,
            samples: int, seed: Optional[int]) -> BackendReading:
    estimate = monte_carlo_probability(
        polynomial, probabilities, samples=samples, seed=seed)
    return BackendReading(
        "mc", estimate.value, stderr=estimate.standard_error, exact=False)


def _run_parallel(polynomial: Polynomial, probabilities: ProbabilityMap,
                  samples: int, seed: Optional[int]) -> BackendReading:
    estimate = parallel_probability(
        polynomial, probabilities, samples=samples, seed=seed)
    return BackendReading(
        "parallel", estimate.value, stderr=estimate.standard_error,
        exact=False)


def _run_karp_luby(polynomial: Polynomial, probabilities: ProbabilityMap,
                   samples: int, seed: Optional[int]) -> BackendReading:
    estimate = karp_luby_probability(
        polynomial, probabilities, samples=samples, seed=seed)
    return BackendReading(
        "karp-luby", estimate.value, stderr=estimate.standard_error,
        exact=False)


def _small_enough_for_brute_force(polynomial: Polynomial) -> bool:
    return len(polynomial.literals()) <= BRUTE_FORCE_LITERAL_LIMIT


register_backend(InferenceBackend(
    "brute-force", InferenceBackend.KIND_EXACT, _run_brute_force,
    supports=_small_enough_for_brute_force,
    description="2^n assignment enumeration (test oracle)"))
register_backend(InferenceBackend(
    "exact", InferenceBackend.KIND_EXACT, _run_exact,
    description="memoised Shannon expansion"))
register_backend(InferenceBackend(
    "bdd", InferenceBackend.KIND_EXACT, _run_bdd,
    description="ROBDD compile + weighted model count"))
register_backend(InferenceBackend(
    "read-once", InferenceBackend.KIND_EXACT, _run_read_once,
    supports=is_read_once,
    description="linear-time over a read-once factorization"))
register_backend(InferenceBackend(
    "mc", InferenceBackend.KIND_SAMPLING, _run_mc,
    description="sequential Monte-Carlo"))
register_backend(InferenceBackend(
    "parallel", InferenceBackend.KIND_SAMPLING, _run_parallel,
    description="numpy-vectorized Monte-Carlo"))
register_backend(InferenceBackend(
    "karp-luby", InferenceBackend.KIND_SAMPLING, _run_karp_luby,
    description="Karp-Luby union sampler (unbiased)"))
