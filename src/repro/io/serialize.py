"""JSON serialization of programs, provenance graphs, and polynomials.

Provenance only pays off when it outlives the evaluation that produced it:
captured once, a graph can be exported, shipped to an analyst, and queried
offline.  This module defines a versioned, dependency-free JSON format:

- :func:`program_to_json` / :func:`program_from_json` — clause-level round
  trip (labels and probabilities preserved);
- :func:`graph_to_json` / :func:`graph_from_json` — base tuples, rules,
  and rule executions;
- :func:`polynomial_to_json` / :func:`polynomial_from_json` — monomials as
  sorted literal lists;
- :func:`save_session` / :func:`load_session` — one file holding program
  text, graph, and probability map, loadable without re-evaluation;
- :func:`update_to_json` — the ``p3 update`` envelope: delta-evaluation
  statistics, post-update epoch, and re-answered queries;
- :func:`trace_to_json` / :func:`metrics_to_json` — telemetry span trees
  and metric snapshots in the same versioned envelope family;
- :func:`chaos_report_to_json` / :func:`error_to_json` — resilience
  artifacts: chaos-harness reports and the structured error envelope the
  CLI prints under ``--json`` when a command fails.

The format is line-oriented-diff friendly (sorted keys, sorted lists) so
exports are stable across runs.
"""

from __future__ import annotations

import json
from typing import Dict, NamedTuple

from ..datalog.ast import Program
from ..datalog.parser import parse_program
from ..provenance.graph import ProvenanceGraph, RuleExecution
from ..provenance.polynomial import (
    Literal,
    Monomial,
    Polynomial,
    rule_literal,
    tuple_literal,
)

#: Format version written into every document.  Version 2 added the
#: ``epoch`` field to session documents; readers still accept version-1
#: documents (an absent epoch defaults to 0).
FORMAT_VERSION = 2

#: Versions this module can still read.
COMPATIBLE_VERSIONS = frozenset({1, 2})


class SerializationError(ValueError):
    """Raised for unknown versions or malformed documents."""


class FormatVersionError(SerializationError):
    """A document's format version is one this build cannot read.

    Carries structured detail (``found`` / ``expected``) that
    :func:`error_to_json` folds into the error envelope, so scripted
    callers can distinguish a version mismatch from a corrupt file.
    """

    def __init__(self, kind: str, found: object) -> None:
        expected = sorted(COMPATIBLE_VERSIONS)
        super().__init__(
            "Unsupported %s format version %r (readable: %s)"
            % (kind, found, ", ".join(map(str, expected))))
        self.kind = kind
        self.found = found
        self.expected = expected

    def to_dict(self) -> dict:
        return {
            "document_kind": self.kind,
            "found_version": self.found,
            "expected_versions": self.expected,
        }


def _check_version(document: dict, kind: str) -> None:
    version = document.get("version")
    if version not in COMPATIBLE_VERSIONS:
        raise FormatVersionError(kind, version)
    if document.get("kind") != kind:
        raise SerializationError(
            "Expected a %r document, found %r" % (kind, document.get("kind")))


# -- programs -----------------------------------------------------------------

def program_to_json(program: Program) -> dict:
    """Serialise a program (via its canonical, re-parseable text)."""
    return {
        "version": FORMAT_VERSION,
        "kind": "program",
        "source": str(program),
    }


def program_from_json(document: dict) -> Program:
    _check_version(document, "program")
    return parse_program(document["source"])


# -- literals / polynomials -----------------------------------------------------

def literal_to_json(literal: Literal) -> dict:
    return {"kind": literal.kind, "key": literal.key}


def literal_from_json(document: dict) -> Literal:
    return Literal(document["kind"], document["key"])


def polynomial_to_json(polynomial: Polynomial) -> dict:
    monomials = sorted(
        [
            [literal_to_json(lit) for lit in sorted(monomial.literals)]
            for monomial in polynomial.monomials
        ],
        key=json.dumps,
    )
    return {
        "version": FORMAT_VERSION,
        "kind": "polynomial",
        "monomials": monomials,
    }


def polynomial_from_json(document: dict) -> Polynomial:
    _check_version(document, "polynomial")
    return Polynomial(
        Monomial(literal_from_json(entry) for entry in group)
        for group in document["monomials"]
    )


def _sort_key(entry: dict) -> str:
    return json.dumps(entry, sort_keys=True)


# -- graphs -----------------------------------------------------------------------

def graph_to_json(graph: ProvenanceGraph) -> dict:
    base = [
        {"key": key, "probability": graph.base_probability(key),
         "label": graph.base_label(key)}
        for key in sorted(k for k in graph.tuple_keys() if graph.is_base(k))
    ]
    rules = [
        {"label": label, "probability": probability}
        for label, probability in sorted(graph.rules().items())
    ]
    executions = [
        {"rule": execution.rule_label, "head": execution.head,
         "body": list(execution.body),
         "probability": execution.probability}
        for execution in sorted(graph.executions(), key=lambda e: e.exec_id)
    ]
    return {
        "version": FORMAT_VERSION,
        "kind": "graph",
        "base_tuples": base,
        "rules": rules,
        "executions": executions,
    }


def graph_from_json(document: dict) -> ProvenanceGraph:
    _check_version(document, "graph")
    graph = ProvenanceGraph()
    for entry in document["base_tuples"]:
        graph.add_base_tuple(entry["key"], entry["probability"],
                             entry.get("label"))
    for entry in document["rules"]:
        graph.add_rule(entry["label"], entry["probability"])
    for entry in document["executions"]:
        graph.add_execution(RuleExecution(
            entry["rule"], entry["head"], tuple(entry["body"]),
            entry["probability"]))
    return graph


# -- query results --------------------------------------------------------------------

def query_result_to_json(result) -> dict:
    """Wrap any :class:`~repro.queries.result.QueryResult` in the uniform
    versioned envelope: ``{"version", "kind": "query_result",
    "query_type", "summary", "payload"}``."""
    if not hasattr(result, "to_dict") or not getattr(
            result, "query_type", ""):
        raise SerializationError(
            "%r does not implement the QueryResult protocol" % (result,))
    document = {
        "version": FORMAT_VERSION,
        "kind": "query_result",
        "query_type": result.query_type,
        "summary": result.summary(),
        "payload": result.to_dict(),
    }
    resilience = getattr(result, "resilience", None)
    if resilience is not None:
        document["resilience"] = (
            resilience.to_dict() if hasattr(resilience, "to_dict")
            else dict(resilience))
    return document


def query_result_from_json(document: dict):
    """Rebuild the typed query result from its envelope.

    The concrete class is looked up by the envelope's ``query_type`` tag
    in :data:`repro.queries.result.RESULT_TYPES`.
    """
    _check_version(document, "query_result")
    from ..queries.result import RESULT_TYPES
    query_type = document.get("query_type")
    cls = RESULT_TYPES.get(query_type)  # type: ignore[arg-type]
    if cls is None:
        raise SerializationError(
            "Unknown query_type %r (known: %s)"
            % (query_type, ", ".join(sorted(RESULT_TYPES))))
    return cls.from_dict(document["payload"])


def dump_query_result(result, indent: int = 2) -> str:
    """The enveloped result as stable (sorted-key) JSON text."""
    return json.dumps(query_result_to_json(result), indent=indent,
                      sort_keys=True)


def load_query_result(text: str):
    """Inverse of :func:`dump_query_result`."""
    return query_result_from_json(json.loads(text))


# -- live updates ---------------------------------------------------------------------

def evaluation_result_to_json(result) -> dict:
    """Serialise an :class:`~repro.datalog.engine.EvaluationResult`'s
    statistics (the database itself is not captured)."""
    return {
        "rounds": result.rounds,
        "firings": result.firing_count,
        "derived": result.derived_count,
        "seconds": result.elapsed_seconds,
    }


def update_to_json(delta, epoch: int, results: Dict[str, float]) -> dict:
    """Envelope for one live update: the delta-evaluation statistics, the
    system epoch after the update, and any (re-)answered queries."""
    return {
        "version": FORMAT_VERSION,
        "kind": "update",
        "epoch": epoch,
        "delta": evaluation_result_to_json(delta),
        "results": {key: results[key] for key in sorted(results)},
    }


# -- differential audits --------------------------------------------------------------

def audit_report_to_json(report) -> dict:
    """Envelope for an audit sweep (duck-typed, like query results).

    :class:`repro.audit.AuditReport.to_dict` already emits the versioned
    ``audit_report`` envelope; this wrapper validates the protocol so the
    CLI and CI artifacts stay consistent with the other ``*_to_json``
    entry points.
    """
    if not hasattr(report, "to_dict"):
        raise SerializationError(
            "%r does not implement the audit report protocol" % (report,))
    document = report.to_dict()
    if document.get("kind") != "audit_report":
        raise SerializationError(
            "Expected an 'audit_report' document, found %r"
            % document.get("kind"))
    return document


def audit_case_to_json(case) -> dict:
    """Envelope for one audit case (a polynomial plus its context)."""
    if not hasattr(case, "to_dict"):
        raise SerializationError(
            "%r does not implement the audit case protocol" % (case,))
    return {
        "version": FORMAT_VERSION,
        "kind": "audit_case",
        "case": case.to_dict(),
    }


def audit_case_from_json(document: dict):
    """Inverse of :func:`audit_case_to_json`."""
    from ..audit.generator import AuditCase
    _check_version(document, "audit_case")
    return AuditCase.from_dict(document["case"])


# -- resilience -----------------------------------------------------------------------

def chaos_report_to_json(report) -> dict:
    """Envelope for a chaos-harness run (duck-typed, like audit reports).

    :class:`repro.resilience.chaos.ChaosReport.to_dict` already emits the
    versioned ``chaos_report`` envelope; this wrapper validates the
    protocol so CLI output and CI artifacts stay consistent with the
    other ``*_to_json`` entry points.
    """
    if not hasattr(report, "to_dict"):
        raise SerializationError(
            "%r does not implement the chaos report protocol" % (report,))
    document = report.to_dict()
    if document.get("kind") != "chaos_report":
        raise SerializationError(
            "Expected a 'chaos_report' document, found %r"
            % document.get("kind"))
    return document


def error_to_json(error: BaseException) -> dict:
    """Envelope for a failed CLI invocation.

    Under ``--json`` the CLI prints this instead of a half-finished
    result so scripted callers always parse *something*: ``{"version",
    "kind": "error", "error": {"type", "message", ...}}``.  Budget hits
    contribute their structured detail (resource, limit, used) via
    :meth:`repro.core.errors.BudgetExceededError.to_dict`.
    """
    # str(KeyError) wraps the message in repr quotes; unwrap for the
    # KeyError-derived facade errors (UnknownTupleError, ...).
    if isinstance(error, KeyError) and len(error.args) == 1:
        message = str(error.args[0])
    else:
        message = str(error)
    detail = {
        "type": type(error).__name__,
        "message": message,
    }
    if hasattr(error, "to_dict"):
        try:
            extra = error.to_dict()
        except Exception:
            extra = None
        if isinstance(extra, dict):
            for key in sorted(extra):
                detail.setdefault(key, extra[key])
    return {
        "version": FORMAT_VERSION,
        "kind": "error",
        "error": detail,
    }


# -- telemetry ------------------------------------------------------------------------

def trace_to_json(spans, anchor_ns: int = 0) -> dict:
    """Envelope for a collection of telemetry spans.

    ``spans`` may be :class:`repro.telemetry.tracer.Span` objects or the
    dicts produced by ``Span.to_dict``; ``anchor_ns`` converts monotonic
    timestamps into wall-clock ones (pass ``Tracer.anchor_ns``).
    """
    rendered = []
    for span in spans:
        if hasattr(span, "to_dict"):
            rendered.append(span.to_dict(anchor_ns))
        elif isinstance(span, dict):
            rendered.append(dict(span))
        else:
            raise SerializationError(
                "%r is neither a Span nor a span dict" % (span,))
    rendered.sort(key=lambda entry: (entry.get("trace_id", ""),
                                     entry.get("start_ns", 0),
                                     entry.get("span_id", "")))
    return {
        "version": FORMAT_VERSION,
        "kind": "trace",
        "spans": rendered,
    }


def trace_from_json(document: dict) -> list:
    """Inverse of :func:`trace_to_json` (spans stay plain dicts)."""
    _check_version(document, "trace")
    spans = document["spans"]
    if not isinstance(spans, list):
        raise SerializationError("'spans' must be a list")
    return [dict(entry) for entry in spans]


def metrics_to_json(registry) -> dict:
    """Envelope for a :class:`repro.telemetry.metrics.MetricsRegistry`."""
    if not hasattr(registry, "to_json"):
        raise SerializationError(
            "%r does not implement the metrics registry protocol"
            % (registry,))
    return {
        "version": FORMAT_VERSION,
        "kind": "metrics",
        "metrics": registry.to_json(),
    }


def metrics_from_json(document: dict) -> list:
    """Inverse of :func:`metrics_to_json` (the plain metric documents)."""
    _check_version(document, "metrics")
    metrics = document["metrics"]
    if not isinstance(metrics, list):
        raise SerializationError("'metrics' must be a list")
    return [dict(entry) for entry in metrics]


# -- sessions ------------------------------------------------------------------------

class SessionDocument(NamedTuple):
    """A decoded session: everything needed to warm-start offline.

    ``epoch`` is the system epoch the session was saved at; version-1
    documents (written before epochs were persisted) decode as epoch 0.
    """

    program: Program
    graph: ProvenanceGraph
    probabilities: Dict[Literal, float]
    epoch: int = 0


def session_to_json(program: Program, graph: ProvenanceGraph,
                    epoch: int = 0) -> dict:
    """One document holding everything needed to query offline."""
    probabilities = {
        str(literal): probability
        for literal, probability in graph.probability_map().items()
    }
    kinds = {
        str(literal): literal.kind
        for literal in graph.probability_map()
    }
    return {
        "version": FORMAT_VERSION,
        "kind": "session",
        "epoch": int(epoch),
        "program": program_to_json(program),
        "graph": graph_to_json(graph),
        "probabilities": [
            {"key": key, "kind": kinds[key], "probability": probabilities[key]}
            for key in sorted(probabilities)
        ],
    }


def session_from_json(document: dict) -> SessionDocument:
    _check_version(document, "session")
    program = program_from_json(document["program"])
    graph = graph_from_json(document["graph"])
    probabilities: Dict[Literal, float] = {}
    for entry in document["probabilities"]:
        literal = (rule_literal(entry["key"]) if entry["kind"] == "rule"
                   else tuple_literal(entry["key"]))
        probabilities[literal] = entry["probability"]
    # Version-1 sessions predate epoch persistence: default to 0 so a
    # reloaded legacy session starts from a well-defined epoch.
    epoch = document.get("epoch", 0)
    if not isinstance(epoch, int) or epoch < 0:
        raise SerializationError(
            "Session 'epoch' must be a non-negative integer, got %r"
            % (epoch,))
    return SessionDocument(program, graph, probabilities, epoch)


def save_session(program: Program, graph: ProvenanceGraph,
                 path: str, epoch: int = 0) -> None:
    """Write a session document to ``path`` (pretty, stable JSON).

    Always UTF-8 — sessions with non-ASCII constants must round-trip
    regardless of the platform's locale encoding.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(session_to_json(program, graph, epoch=epoch), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


def load_session(path: str) -> SessionDocument:
    """Read a session document written by :func:`save_session`."""
    with open(path, encoding="utf-8") as handle:
        return session_from_json(json.load(handle))
