"""Built-in comparison constraints for rule bodies.

ProbLog programs in the paper use guard constraints such as ``P1 != P2``
(Figures 2 and 7).  A :class:`Comparison` is not an atom: it produces no
tuples and never appears in provenance; it merely filters substitutions
produced by the relational part of a rule body.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Union

from .terms import Constant, Substitution, Term, Variable

_OPERATORS: Dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class UnboundComparisonError(Exception):
    """Raised when a comparison is evaluated with an unbound variable."""


class Comparison:
    """A binary comparison constraint between two terms.

    Supported operators: ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Term, right: Term) -> None:
        if op not in _OPERATORS:
            raise ValueError(
                "Unsupported comparison operator %r (expected one of %s)"
                % (op, ", ".join(sorted(_OPERATORS)))
            )
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Comparison is immutable")

    def variables(self):
        """Yield the variables appearing in this comparison."""
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                yield term

    def _resolve(self, term: Term, subst: Substitution) -> Union[str, int, float]:
        if isinstance(term, Variable):
            bound = subst.get(term)
            if not isinstance(bound, Constant):
                raise UnboundComparisonError(
                    "Comparison %s evaluated with unbound variable %s" % (self, term)
                )
            return bound.value
        if isinstance(term, Constant):
            return term.value
        raise TypeError("Comparison term must be Variable or Constant: %r" % (term,))

    def evaluate(self, subst: Substitution) -> bool:
        """Evaluate the comparison under a substitution binding its variables."""
        left = self._resolve(self.left, subst)
        right = self._resolve(self.right, subst)
        try:
            return _OPERATORS[self.op](left, right)
        except TypeError:
            # Mixed-type ordered comparisons (e.g. "a" < 3) are defined false,
            # matching the closed-world reading of a failed guard.
            if self.op == "!=":
                return True
            return False

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.op, self.left, self.right))

    def __repr__(self) -> str:
        return "Comparison(%r, %r, %r)" % (self.op, self.left, self.right)

    def __str__(self) -> str:
        return "%s%s%s" % (self.left, self.op, self.right)
