"""Unit tests for the interned-term arena and overlay fact store."""

import pytest

from repro.datalog.parser import parse_program
from repro.ground import FactStore, RelationTable, TermArena

TRUST = """
t1 0.9: trust(1,2).
t2 0.8: trust(2,3).
r1 1.0: trustPath(X,Y) :- trust(X,Y).
"""


class TestTermArena:
    def test_interning_is_idempotent(self):
        arena = TermArena()
        assert arena.intern("a") == arena.intern("a")
        assert len(arena) == 1

    def test_distinct_values_get_distinct_ids(self):
        arena = TermArena()
        assert arena.intern("a") != arena.intern("b")

    def test_type_sensitive(self):
        # 1, 1.0, and "1" are == in various pairings but must not share
        # a term id: the engine distinguishes Constant(1) from
        # Constant("1") when rendering provenance keys.
        arena = TermArena()
        ids = {arena.intern(1), arena.intern(1.0), arena.intern("1"),
               arena.intern(True)}
        assert len(ids) == 4

    def test_roundtrip(self):
        arena = TermArena()
        tid = arena.intern((1, "x"))
        assert arena.value(tid) == (1, "x")
        assert arena.lookup((1, "x")) == tid
        assert arena.lookup("missing") is None


class TestRelationTable:
    def test_add_deduplicates(self):
        table = RelationTable("edge", 2)
        assert table.add((0, 1), 10)
        assert not table.add((0, 1), 11)
        assert len(table) == 1
        assert table.gids == [10]

    def test_match_unbound_returns_window(self):
        table = RelationTable("edge", 2)
        for index in range(5):
            table.add((index, index + 1), index)
        assert list(table.match([], 1, 3)) == [1, 2]

    def test_match_bound_column(self):
        table = RelationTable("edge", 2)
        table.add((0, 1), 0)
        table.add((0, 2), 1)
        table.add((3, 1), 2)
        assert sorted(table.match([(0, 0)])) == [0, 1]
        assert sorted(table.match([(1, 1)])) == [0, 2]
        assert sorted(table.match([(0, 0), (1, 1)])) == [0]

    def test_match_respects_window(self):
        table = RelationTable("edge", 2)
        table.add((0, 1), 0)
        table.add((0, 2), 1)
        assert list(table.match([(0, 0)], lo=1)) == [1]

    def test_index_extends_after_later_adds(self):
        table = RelationTable("edge", 2)
        table.add((0, 1), 0)
        assert list(table.match([(0, 0)])) == [0]  # builds the index
        table.add((0, 2), 1)  # must extend, not go stale
        assert sorted(table.match([(0, 0)])) == [0, 1]


class TestFactStore:
    def test_from_program_seeds_facts_with_meta(self):
        store = FactStore.from_program(parse_program(TRUST))
        assert store.count() == 2
        gid = store.find("trust", (1, 2))
        assert gid is not None
        assert store.fact(gid) == ("trust", (1, 2))
        assert store.meta(gid) == (0.9, "t1")

    def test_duplicate_add_is_noop(self):
        store = FactStore.from_program(parse_program(TRUST))
        before = store.count()
        gid, inserted = store.add("trust", (1, 2))
        assert not inserted
        assert gid == store.find("trust", (1, 2))
        assert store.count() == before

    def test_overlay_sees_parent_and_continues_gids(self):
        parent = FactStore.from_program(parse_program(TRUST))
        overlay = FactStore(parent=parent)
        assert overlay.count() == parent.count()
        gid, inserted = overlay.add("trust2", (3, 4))
        assert inserted
        assert gid >= parent.count()
        assert overlay.fact(gid) == ("trust2", (3, 4))
        # The parent never sees overlay rows.
        assert parent.find("trust2", (3, 4)) is None
        assert overlay.find("trust", (1, 2)) == parent.find("trust", (1, 2))

    def test_overlay_rejects_new_rows_in_parent_relations(self):
        parent = FactStore.from_program(parse_program(TRUST))
        overlay = FactStore(parent=parent)
        # Re-adding an existing parent row is a no-op...
        gid, inserted = overlay.add("trust", (1, 2))
        assert not inserted
        assert gid == parent.find("trust", (1, 2))
        # ...but a NEW row into a parent-owned relation would corrupt the
        # shared base and must be refused.
        with pytest.raises(ValueError):
            overlay.add("trust", (9, 9))

    def test_owned_relations_in_insertion_order(self):
        store = FactStore()
        store.add("b", (1,))
        store.add("a", (2,))
        store.add("b", (3,))
        assert store.owned_relations() == ("b", "a")

    def test_arity_mismatch_rejected(self):
        store = FactStore()
        store.add("edge", (1, 2))
        with pytest.raises(ValueError):
            store.add("edge", (1, 2, 3))

    def test_location_dispatches_to_parent(self):
        parent = FactStore.from_program(parse_program(TRUST))
        overlay = FactStore(parent=parent)
        overlay.add("seen", (1,))
        parent_gid = parent.find("trust", (2, 3))
        table, index = overlay.location(parent_gid)
        assert table.name == "trust"
        assert overlay.relation_of(parent_gid) == "trust"
        assert overlay.row_of(parent_gid) == parent.row_of(parent_gid)

    def test_local_count_excludes_parent(self):
        parent = FactStore.from_program(parse_program(TRUST))
        overlay = FactStore(parent=parent)
        overlay.add("seen", (1,))
        assert overlay.local_count() == 1
        assert overlay.count() == parent.count() + 1

    def test_shared_arena(self):
        parent = FactStore.from_program(parse_program(TRUST))
        overlay = FactStore(parent=parent)
        assert overlay.arena is parent.arena
