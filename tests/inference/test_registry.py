"""Unit tests for the inference backend registry."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.inference.registry import (
    BRUTE_FORCE_LITERAL_LIMIT,
    BackendReading,
    InferenceBackend,
    available_backends,
    backend_names,
    exact_backend_names,
    get_backend,
    is_deterministic,
    override_backend,
    register_backend,
    sampling_backend_names,
)
from repro.inference.request import InferenceRequest
from repro.provenance.polynomial import (
    Monomial,
    Polynomial,
    tuple_literal,
)

POLY = make_polynomial(("a", "b"), ("b", "c"), ("d",))
PROBS = random_probabilities(POLY, seed=1)
TRUTH = exact_probability(POLY, PROBS)


class TestRegistryLookup:
    def test_all_seven_backends_registered(self):
        assert backend_names() == ("bdd", "brute-force", "exact",
                                   "karp-luby", "mc", "parallel",
                                   "read-once")

    def test_kind_partitions(self):
        assert exact_backend_names() == ("bdd", "brute-force", "exact",
                                         "read-once")
        assert sampling_backend_names() == ("karp-luby", "mc", "parallel")
        assert set(exact_backend_names()) | set(sampling_backend_names()) \
            == set(backend_names())

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ValueError, match="magic"):
            get_backend("magic")

    def test_is_deterministic(self):
        assert is_deterministic("exact")
        assert is_deterministic("brute-force")
        assert not is_deterministic("mc")
        assert not is_deterministic("karp-luby")
        assert not is_deterministic("no-such-backend")

    def test_register_duplicate_raises(self):
        backend = get_backend("exact")
        with pytest.raises(ValueError):
            register_backend(backend)
        # replace=True is the explicit override path.
        register_backend(backend, replace=True)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            InferenceBackend("bogus", "quantum", lambda *a: None)


class TestApplicability:
    def test_brute_force_refuses_large_polynomials(self):
        wide = Polynomial.from_monomials([
            Monomial([tuple_literal("x%d" % i)])
            for i in range(BRUTE_FORCE_LITERAL_LIMIT + 1)
        ])
        assert not get_backend("brute-force").supports(wide)
        assert get_backend("exact").supports(wide)

    def test_read_once_refuses_p4_diamond(self):
        diamond = make_polynomial(("a", "b"), ("b", "c"), ("c", "d"))
        assert not get_backend("read-once").supports(diamond)
        assert get_backend("read-once").supports(
            make_polynomial(("a",), ("b", "c")))

    def test_available_backends_filters_by_support(self):
        diamond = make_polynomial(("a", "b"), ("b", "c"), ("c", "d"))
        names = [b.name for b in available_backends(diamond)]
        assert "read-once" not in names
        assert "brute-force" in names

    def test_available_backends_named_subset(self):
        selected = available_backends(POLY, names=["exact", "mc"])
        assert [b.name for b in selected] == ["exact", "mc"]


class TestReadings:
    def test_exact_backends_agree_with_truth(self):
        for name in ("brute-force", "exact", "bdd"):
            reading = get_backend(name).run(POLY, PROBS)
            assert reading.exact
            assert reading.stderr is None
            assert reading.value == pytest.approx(TRUTH, abs=1e-12)

    def test_sampling_backends_report_stderr(self):
        for name in sampling_backend_names():
            reading = get_backend(name).run(
                POLY, PROBS, InferenceRequest(samples=2000, seed=3))
            assert not reading.exact
            assert reading.stderr is not None and reading.stderr >= 0.0
            assert reading.value == pytest.approx(TRUTH, abs=0.1)

    def test_sampling_runs_reproducible_by_seed(self):
        backend = get_backend("mc")
        first = backend.run(POLY, PROBS,
                            InferenceRequest(samples=500, seed=11))
        second = backend.run(POLY, PROBS,
                             InferenceRequest(samples=500, seed=11))
        assert first.value == second.value

    def test_reading_value_clamped(self):
        assert BackendReading("x", 1.07).value_clamped == 1.0
        assert BackendReading("x", -0.2).value_clamped == 0.0
        assert BackendReading("x", 0.4).value_clamped == 0.4

    def test_reading_to_dict(self):
        document = BackendReading("mc", 0.5, stderr=0.01,
                                  exact=False).to_dict()
        assert document == {"backend": "mc", "value": 0.5,
                            "stderr": 0.01, "exact": False}


class TestOverride:
    def test_override_swaps_and_restores(self):
        def broken(polynomial, probabilities, request):
            return BackendReading("exact", 0.123)

        original = get_backend("exact")
        with override_backend("exact", broken) as replaced:
            assert replaced.deterministic
            assert get_backend("exact").run(POLY, PROBS).value == 0.123
        assert get_backend("exact") is original

    def test_override_restores_on_error(self):
        def exploding(polynomial, probabilities, request):
            raise RuntimeError("boom")

        original = get_backend("bdd")
        with pytest.raises(RuntimeError):
            with override_backend("bdd", exploding):
                get_backend("bdd").run(POLY, PROBS)
        assert get_backend("bdd") is original

    def test_override_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            with override_backend("magic", lambda *a: None):
                pass
