"""Span sinks and trace exporters.

A sink is anything with ``on_span(span)``; the tracer calls it once per
*finished* span (children before parents, because children exit first).
Three sinks ship here:

- :class:`RingBufferSink` — bounded in-memory history, the default; the
  ``p3 trace`` renderer and the audit replay attachment read from it.
- :class:`JSONLSink` — one JSON object per line, append-only, the
  ``--trace-out`` format.  Line-oriented so a crashed process still
  leaves a parseable prefix.
- :class:`SlowQueryLog` — retains spans whose duration crosses a
  threshold (by default spans named ``query``, i.e. one executor spec,
  plus trace roots), the classic slow-query log.

Plus two pure exporters over a span list: :func:`chrome_trace_events` /
:func:`write_chrome_trace` (the Chrome ``trace_event`` format — load the
file in ``chrome://tracing`` or Perfetto for a flamegraph) and
:func:`render_span_tree` (the indented text tree ``p3 trace`` prints).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from .tracer import Span


class RingBufferSink:
    """Keeps the most recent ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._dropped = 0

    def on_span(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
            self._spans.append(span)

    def spans(self) -> List[Span]:
        """Every retained span, oldest first."""
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> List[Span]:
        """The retained spans of one trace, oldest first."""
        with self._lock:
            return [span for span in self._spans
                    if span.trace_id == trace_id]

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        return "RingBufferSink(%d/%d spans)" % (len(self), self.capacity)


class JSONLSink:
    """Appends one JSON line per finished span to a file."""

    def __init__(self, path: str, anchor_ns: int = 0) -> None:
        self.path = path
        self.anchor_ns = anchor_ns
        self._lock = threading.Lock()
        self._handle = open(path, "w", encoding="utf-8")

    def on_span(self, span: Span) -> None:
        line = json.dumps(span.to_dict(self.anchor_ns), sort_keys=True)
        with self._lock:
            if self._handle is not None:
                self._handle.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self) -> str:
        return "JSONLSink(%r)" % self.path


class SlowQueryLog:
    """Retains spans slower than ``threshold_seconds``.

    Only spans whose name is in ``span_names`` — or trace roots, which
    bound a whole operation — are considered, so stage sub-spans of one
    slow query do not each produce an entry.  ``emit`` (when given) is
    called once per retained span, e.g. to print a warning line.
    """

    def __init__(self, threshold_seconds: float,
                 capacity: int = 256,
                 span_names: Sequence[str] = ("query",),
                 emit: Optional[Callable[[Span], None]] = None) -> None:
        if threshold_seconds <= 0:
            raise ValueError("threshold_seconds must be positive")
        self.threshold_seconds = threshold_seconds
        self.span_names = frozenset(span_names)
        self._emit = emit
        self._lock = threading.Lock()
        self._entries: Deque[Span] = deque(maxlen=capacity)

    def on_span(self, span: Span) -> None:
        if span.name not in self.span_names and span.parent_id is not None:
            return
        if span.duration_seconds < self.threshold_seconds:
            return
        with self._lock:
            self._entries.append(span)
        if self._emit is not None:
            self._emit(span)

    def entries(self) -> List[Span]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return "SlowQueryLog(>%.3fs, %d entries)" % (
            self.threshold_seconds, len(self))


# -- Chrome trace_event export ---------------------------------------------------

def chrome_trace_events(spans: Sequence[Span]) -> List[dict]:
    """Spans as Chrome ``trace_event`` complete ("X") events.

    Threads map to ``tid`` in first-seen order so the flamegraph groups
    the executor's worker threads into separate rows; ``ts``/``dur`` are
    microseconds on the spans' shared monotonic clock.
    """
    thread_ids: Dict[str, int] = {}
    events: List[dict] = []
    for span in sorted(spans, key=lambda s: s.start_ns):
        tid = thread_ids.setdefault(span.thread, len(thread_ids) + 1)
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attributes)
        events.append({
            "name": span.name,
            "cat": "p3",
            "ph": "X",
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    for thread, tid in thread_ids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread or "main"},
        })
    return events


def write_chrome_trace(spans: Sequence[Span], path: str) -> None:
    """Write spans as a Chrome ``trace_event`` JSON document."""
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- text rendering ---------------------------------------------------------------

def render_span_tree(spans: Sequence[Span]) -> str:
    """Spans as an indented text tree (what ``p3 trace`` prints).

    Orphaned spans (parent evicted from the ring buffer) surface as
    additional roots rather than disappearing.
    """
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for group in children.values():
        group.sort(key=lambda s: s.start_ns)

    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        attrs = ""
        if span.attributes:
            attrs = "  {%s}" % ", ".join(
                "%s=%s" % (name, value)
                for name, value in sorted(span.attributes.items()))
        marker = "" if span.status == "ok" else "  [%s]" % span.status
        lines.append("%s%-24s %9.3fms%s%s" % (
            "  " * depth, span.name, span.duration_ns / 1e6, attrs, marker))
        for child in children.get(span.span_id, []):
            render(child, depth + 1)

    for root in children.get(None, []):
        render(root, 0)
    return "\n".join(lines)
