"""Unit tests for the provenance graph and its two construction paths."""

import pytest

from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.provenance.extraction import extract_polynomial
from repro.provenance.graph import (
    GraphBuilder,
    ProvenanceGraph,
    RuleExecution,
    graph_from_tables,
    register_program,
)
from repro.provenance.polynomial import rule_literal, tuple_literal


def build(source):
    """Evaluate a program and return (graph, program, result)."""
    program = parse_program(source)
    builder = GraphBuilder()
    register_program(builder.graph, program)
    result = Engine(program, recorder=builder).run()
    return builder.graph, program, result


SIMPLE = """
t1 0.5: p(1).
t2 0.6: q(1).
r1 0.8: d(X) :- p(X), q(X).
"""


class TestRuleExecution:
    def test_exec_id(self):
        execution = RuleExecution("r1", "d(1)", ("p(1)", "q(1)"), 0.8)
        assert execution.exec_id == "r1[p(1);q(1)]"

    def test_equality_ignores_probability(self):
        first = RuleExecution("r1", "d(1)", ("p(1)",), 0.8)
        second = RuleExecution("r1", "d(1)", ("p(1)",), 0.8)
        assert first == second
        assert hash(first) == hash(second)

    def test_immutable(self):
        execution = RuleExecution("r1", "d(1)", ("p(1)",), 0.8)
        with pytest.raises(AttributeError):
            execution.head = "other"


class TestGraphBuilding:
    def test_base_tuples_registered(self):
        graph, _, _ = build(SIMPLE)
        assert graph.is_base("p(1)")
        assert graph.base_probability("p(1)") == 0.5
        assert graph.base_label("p(1)") == "t1"

    def test_rules_registered(self):
        graph, _, _ = build(SIMPLE)
        assert graph.rule_probability("r1") == 0.8

    def test_derivations_recorded(self):
        graph, _, _ = build(SIMPLE)
        derivations = graph.derivations_of("d(1)")
        assert len(derivations) == 1
        assert derivations[0].body == ("p(1)", "q(1)")

    def test_duplicate_execution_ignored(self):
        graph = ProvenanceGraph()
        execution = RuleExecution("r1", "d(1)", ("p(1)",), 0.8)
        assert graph.add_execution(execution)
        assert not graph.add_execution(execution)
        assert len(graph.derivations_of("d(1)")) == 1

    def test_is_derived_vs_base(self):
        graph, _, _ = build(SIMPLE)
        assert graph.is_derived("d(1)")
        assert not graph.is_derived("p(1)")
        assert not graph.is_base("d(1)")

    def test_contains(self):
        graph, _, _ = build(SIMPLE)
        assert "d(1)" in graph
        assert "p(1)" in graph
        assert "missing(1)" not in graph

    def test_counts(self):
        graph, _, _ = build(SIMPLE)
        assert graph.vertex_count() == 3 + 1  # p, q, d tuples + 1 execution
        assert graph.edge_count() == 3  # two inputs + one output edge


class TestProbabilityMap:
    def test_covers_tuples_and_rules(self):
        graph, _, _ = build(SIMPLE)
        probs = graph.probability_map()
        assert probs[tuple_literal("p(1)")] == 0.5
        assert probs[tuple_literal("q(1)")] == 0.6
        assert probs[rule_literal("r1")] == 0.8

    def test_unused_rule_still_present(self):
        graph, _, _ = build("""
            p(1).
            r1 0.3: never(X) :- missing(X), p(X).
        """)
        assert graph.probability_map()[rule_literal("r1")] == 0.3


class TestTableReconstruction:
    def test_matches_live_graph(self):
        program = parse_program(SIMPLE)
        builder = GraphBuilder()
        register_program(builder.graph, program)
        result = Engine(program, recorder=builder).run()
        rebuilt = graph_from_tables(result.database, program)
        assert rebuilt.tuple_keys() >= builder.graph.tuple_keys() - {"d(1)"}
        assert rebuilt.executions() == builder.graph.executions()
        assert rebuilt.probability_map() == builder.graph.probability_map()

    def test_matches_on_recursive_program(self):
        from repro.data import ACQUAINTANCE
        program = parse_program(ACQUAINTANCE)
        builder = GraphBuilder()
        register_program(builder.graph, program)
        result = Engine(program, recorder=builder).run()
        rebuilt = graph_from_tables(result.database, program)
        key = 'know("Ben","Elena")'
        live = extract_polynomial(builder.graph, key)
        reconstructed = extract_polynomial(rebuilt, key)
        assert live == reconstructed

    def test_body_order_recovered(self):
        graph, program, result = build("""
            p(1). q(1).
            r1 1.0: d(X) :- q(X), p(X).
        """)
        rebuilt = graph_from_tables(result.database, program)
        [execution] = rebuilt.derivations_of("d(1)")
        assert execution.body == ("q(1)", "p(1)")


class TestSubgraph:
    def test_rooted_subgraph_contains_support(self):
        graph, _, _ = build(SIMPLE)
        sub = graph.reachable_subgraph("d(1)")
        assert "p(1)" in sub
        assert "q(1)" in sub
        assert len(sub.derivations_of("d(1)")) == 1

    def test_subgraph_excludes_unrelated(self):
        graph, _, _ = build(SIMPLE + "t3 0.9: unrelated(2).")
        sub = graph.reachable_subgraph("d(1)")
        assert "unrelated(2)" not in sub

    def test_subgraph_with_cycles_terminates(self):
        graph, _, _ = build("""
            trust(1,2). trust(2,1).
            r1 1.0: tp(X,Y) :- trust(X,Y).
            r2 1.0: tp(X,Z) :- trust(X,Y), tp(Y,Z).
        """)
        sub = graph.reachable_subgraph("tp(1,1)")
        assert "trust(1,2)" in sub

    def test_hop_limit_truncates(self):
        graph, _, _ = build("""
            edge(1,2). edge(2,3). edge(3,4).
            r1 1.0: path(X,Y) :- edge(X,Y).
            r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
        """)
        shallow = graph.reachable_subgraph("path(1,4)", hop_limit=1)
        deep = graph.reachable_subgraph("path(1,4)", hop_limit=None)
        assert shallow.vertex_count() < deep.vertex_count()


class TestRendering:
    def test_dot_output_shape(self):
        graph, _, _ = build(SIMPLE)
        dot = graph.to_dot(root="d(1)")
        assert dot.startswith("digraph provenance {")
        assert "shape=box" in dot
        assert "shape=oval" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_escapes_quotes(self):
        graph, _, _ = build('t1 0.5: p("x").')
        assert '\\"x\\"' in graph.to_dot()

    def test_text_tree(self):
        graph, _, _ = build(SIMPLE)
        text = graph.to_text("d(1)")
        assert "d(1)" in text
        assert "via r1" in text
        assert "[base p=0.5]" in text

    def test_text_marks_cycles(self):
        graph, _, _ = build("""
            trust(1,2). trust(2,1).
            r1 1.0: tp(X,Y) :- trust(X,Y).
            r2 1.0: tp(X,Z) :- trust(X,Y), tp(Y,Z).
        """)
        text = graph.to_text("tp(1,1)")
        assert "(cycle)" in text

    def test_edges_iteration(self):
        graph, _, _ = build(SIMPLE)
        edges = list(graph.edges())
        assert ("p(1)", "r1[p(1);q(1)]") in edges
        assert ("r1[p(1);q(1)]", "d(1)") in edges
