"""The unified QueryResult protocol: registry, JSON envelope, round trips."""

import json

import pytest

from repro import P3
from repro.data import ACQUAINTANCE
from repro.io.serialize import (
    SerializationError,
    dump_query_result,
    load_query_result,
    query_result_to_json,
)
from repro.queries import RESULT_TYPES, QueryResult

KEY = 'know("Ben","Elena")'


@pytest.fixture(scope="module")
def acq():
    p3 = P3.from_source(ACQUAINTANCE)
    p3.evaluate()
    return p3


def _results(acq):
    """One instance of every registered QueryResult type."""
    return {
        "explanation": acq.explain(KEY),
        "derivation": acq.sufficient_provenance(
            KEY, epsilon=0.05, method="naive"),
        "influence": acq.influence(KEY),
        "modification": acq.modify(KEY, target=0.5),
        "what_if": acq.what_if(deleted=["r2"], targets=[KEY]),
        "why_not": acq.why_not('know("Mary","Steve")'),
    }


class TestRegistry:
    def test_all_six_types_registered(self):
        assert set(RESULT_TYPES) == {
            "explanation", "derivation", "influence", "modification",
            "what_if", "why_not",
        }

    def test_registered_classes_declare_their_tag(self):
        for tag, cls in RESULT_TYPES.items():
            assert cls.query_type == tag
            assert issubclass(cls, QueryResult)

    def test_every_result_carries_its_tag(self, acq):
        for tag, result in _results(acq).items():
            assert result.query_type == tag


class TestProtocol:
    def test_summary_is_one_line(self, acq):
        for result in _results(acq).values():
            summary = result.summary()
            assert isinstance(summary, str)
            assert summary
            assert "\n" not in summary

    def test_to_json_is_valid_sorted_json(self, acq):
        for result in _results(acq).values():
            document = json.loads(result.to_json())
            assert document == result.to_dict()

    def test_dict_round_trip(self, acq):
        for tag, result in _results(acq).items():
            clone = RESULT_TYPES[tag].from_dict(result.to_dict())
            assert clone.to_dict() == result.to_dict()


class TestEnvelope:
    def test_envelope_shape(self, acq):
        document = query_result_to_json(acq.explain(KEY))
        assert document["kind"] == "query_result"
        assert document["query_type"] == "explanation"
        assert document["summary"]
        assert "payload" in document
        assert "version" in document

    def test_json_round_trip_every_type(self, acq):
        for tag, result in _results(acq).items():
            text = dump_query_result(result)
            clone = load_query_result(text)
            assert type(clone) is type(result)
            assert clone.to_dict() == result.to_dict(), tag

    def test_non_result_rejected(self):
        with pytest.raises(SerializationError):
            query_result_to_json({"not": "a result"})

    def test_unknown_query_type_rejected(self):
        with pytest.raises(SerializationError):
            load_query_result(json.dumps({
                "version": 1, "kind": "query_result",
                "query_type": "nope", "payload": {},
            }))


class TestSemantics:
    def test_explanation_payload_fields(self, acq):
        payload = query_result_to_json(acq.explain(KEY))["payload"]
        assert payload["tuple"] == KEY
        assert payload["probability"] == pytest.approx(0.163840)
        assert payload["polynomial"]["monomials"]

    def test_influence_round_trip_preserves_ranking(self, acq):
        report = acq.influence(KEY)
        clone = load_query_result(dump_query_result(report))
        assert [(s.literal, s.influence) for s in clone.scores] \
            == [(s.literal, s.influence) for s in report.scores]

    def test_modification_round_trip_preserves_plan(self, acq):
        plan = acq.modify(KEY, target=0.5)
        clone = load_query_result(dump_query_result(plan))
        assert clone.reached == plan.reached
        assert clone.final_probability == pytest.approx(
            plan.final_probability)
        assert len(clone.steps) == len(plan.steps)

    def test_why_not_round_trip_preserves_candidates(self, acq):
        report = acq.why_not('know("Mary","Steve")')
        clone = load_query_result(dump_query_result(report))
        assert not clone.derivable
        assert len(clone.candidates) == len(report.candidates)
