"""Unit tests for the disagreement shrinker."""

from repro.audit.generator import AuditCase
from repro.audit.shrink import shrink_case, shrink_report
from repro.provenance.polynomial import (
    Monomial,
    Polynomial,
    tuple_literal,
)

A = tuple_literal("a")


def _case(groups, probabilities):
    poly = Polynomial.from_monomials(
        Monomial(tuple_literal(k) for k in group) for group in groups)
    return AuditCase("shrink-me", poly,
                     {tuple_literal(k): v
                      for k, v in probabilities.items()})


def _contains_a(case):
    return A in case.polynomial.literals()


class TestShrinkCase:
    def test_reduces_to_single_literal(self):
        case = _case(
            [("a", "b"), ("c", "d"), ("e",), ("a", "f", "g")],
            {k: 0.3 for k in "abcdefg"})
        shrunk = shrink_case(case, _contains_a)
        assert _contains_a(shrunk)
        assert len(shrunk.polynomial) == 1
        assert shrunk.polynomial.literals() == frozenset([A])
        assert shrunk.origin == "shrunk"

    def test_probabilities_restricted_and_flattened(self):
        case = _case([("a", "b"), ("c",)], {"a": 0.3, "b": 0.9, "c": 0.1})
        shrunk = shrink_case(case, _contains_a)
        assert set(shrunk.probabilities) == shrunk.polynomial.literals()
        # Pass 3 flattens surviving probabilities to 0.5 (the predicate
        # is structural, so flattening always succeeds here).
        assert all(value == 0.5
                   for value in shrunk.probabilities.values())

    def test_non_failing_case_returned_unchanged(self):
        case = _case([("b", "c")], {"b": 0.5, "c": 0.5})
        assert shrink_case(case, _contains_a) is case

    def test_predicate_must_keep_failing(self):
        # A predicate on polynomial size: shrinking must never produce a
        # case the predicate rejects.
        case = _case([("a", "b"), ("c", "d"), ("e", "f")],
                     {k: 0.4 for k in "abcdef"})
        checked = []

        def at_least_two_monomials(candidate):
            result = len(candidate.polynomial) >= 2
            checked.append(result)
            return result

        shrunk = shrink_case(case, at_least_two_monomials)
        assert len(shrunk.polynomial) == 2
        assert all(len(m) == 1 for m in shrunk.polynomial.monomials)

    def test_budget_bounds_attempts(self):
        case = _case([("a", "b"), ("c", "d"), ("e", "f"), ("g", "h")],
                     {k: 0.4 for k in "abcdefgh"})
        calls = []

        def count_and_fail(candidate):
            calls.append(1)
            return True

        shrink_case(case, count_and_fail, budget=10)
        # +1 for the initial "does it fail at all" probe.
        assert len(calls) <= 11

    def test_deterministic(self):
        case = _case([("a", "b"), ("c",), ("a", "d")],
                     {k: 0.3 for k in "abcd"})
        first = shrink_case(case, _contains_a)
        second = shrink_case(case, _contains_a)
        assert first.polynomial == second.polynomial
        assert first.probabilities == second.probabilities


class TestShrinkReport:
    def test_counts_reduction(self):
        original = _case([("a", "b"), ("c", "d")],
                         {k: 0.3 for k in "abcd"})
        shrunk = shrink_case(original, _contains_a)
        report = shrink_report(original, shrunk)
        assert report["monomials"] == {"before": 2, "after": 1}
        assert report["literals"]["after"] < report["literals"]["before"]
