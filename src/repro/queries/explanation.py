"""Explanation Query (Section 4.1): complete derivations of a tuple.

Returns the provenance as both representations — the subgraph of the
provenance graph rooted at the queried tuple, and the extracted provenance
polynomial — together with the success probability computed by a chosen
inference backend.
"""

from __future__ import annotations

from typing import Optional

from ..inference import probability as compute_probability
from ..provenance.extraction import extract_polynomial
from ..provenance.graph import ProvenanceGraph
from ..provenance.polynomial import Polynomial, ProbabilityMap
from .result import QueryResult, register_result


@register_result
class Explanation(QueryResult):
    """Result of an Explanation Query."""

    query_type = "explanation"

    def __init__(self, tuple_key: str, polynomial: Polynomial,
                 subgraph: ProvenanceGraph, probability: float,
                 method: str, hop_limit: Optional[int]) -> None:
        self.tuple_key = tuple_key
        self.polynomial = polynomial
        self.subgraph = subgraph
        self.probability = probability
        self.method = method
        self.hop_limit = hop_limit

    @property
    def derivation_count(self) -> int:
        """Number of (absorbed) alternative derivations."""
        return len(self.polynomial)

    @property
    def literal_count(self) -> int:
        return len(self.polynomial.literals())

    def to_text(self) -> str:
        """Multi-line human-readable explanation."""
        lines = [
            "Explanation of %s" % self.tuple_key,
            "  success probability: %.6f  (method=%s)" % (
                self.probability, self.method),
            "  derivations: %d   literals: %d" % (
                self.derivation_count, self.literal_count),
            "  polynomial: %s" % self.polynomial,
            "",
            self.subgraph.to_text(self.tuple_key, hop_limit=self.hop_limit),
        ]
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering of the derivation subgraph."""
        return self.subgraph.to_dot(root=self.tuple_key)

    def to_dict(self) -> dict:
        from ..io.serialize import graph_to_json, polynomial_to_json
        return {
            "tuple": self.tuple_key,
            "probability": self.probability,
            "method": self.method,
            "hop_limit": self.hop_limit,
            "derivation_count": self.derivation_count,
            "literal_count": self.literal_count,
            "polynomial": polynomial_to_json(self.polynomial),
            "subgraph": graph_to_json(self.subgraph),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Explanation":
        from ..io.serialize import graph_from_json, polynomial_from_json
        return cls(
            payload["tuple"],
            polynomial_from_json(payload["polynomial"]),
            graph_from_json(payload["subgraph"]),
            payload["probability"],
            payload["method"],
            payload["hop_limit"],
        )

    def summary(self) -> str:
        return "%s: P=%.6f (%s), %d derivations over %d literals" % (
            self.tuple_key, self.probability, self.method,
            self.derivation_count, self.literal_count)

    def __repr__(self) -> str:
        return "Explanation(%r, P=%.6f, %d derivations)" % (
            self.tuple_key, self.probability, self.derivation_count,
        )


def explanation_query(graph: ProvenanceGraph, tuple_key: str,
                      probabilities: Optional[ProbabilityMap] = None,
                      method: str = "exact",
                      hop_limit: Optional[int] = None,
                      samples: int = 10000,
                      seed: Optional[int] = None) -> Explanation:
    """Run an Explanation Query against a provenance graph.

    ``probabilities`` defaults to the graph's own probability map.  The
    polynomial is the cycle-free λ⁰ restricted to ``hop_limit`` (None =
    unbounded), and ``method`` selects the probability backend
    (see :data:`repro.inference.METHODS`).
    """
    if probabilities is None:
        probabilities = graph.probability_map()
    polynomial = extract_polynomial(graph, tuple_key, hop_limit=hop_limit)
    subgraph = graph.reachable_subgraph(tuple_key, hop_limit=hop_limit)
    value = compute_probability(
        polynomial, probabilities, method=method, samples=samples, seed=seed)
    return Explanation(tuple_key, polynomial, subgraph, value, method, hop_limit)
