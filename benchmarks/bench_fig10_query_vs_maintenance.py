"""Figure 10 — provenance query time versus maintenance time (hop limit 4).

The paper fixes the hop limit to 4 and shows that explanation-query time
(extracting the provenance of mutual-trust tuples) is on the same order of
magnitude as maintenance time but grows more slowly at larger sizes, owing
to the hop limit.
"""

import time

from repro import P3, P3Config
from repro.provenance.extraction import extract_polynomial

from reporting import paper_scale, record_table
from workloads import MAINTENANCE_HOP_LIMIT, bfs_sample


def _sizes():
    if paper_scale():
        return [50, 100, 150, 200, 250, 300, 350, 400, 450, 500]
    return [20, 40, 60, 80]


#: How many mutual-trust tuples to query per sample.
QUERY_COUNT = 10


def _run_size(size):
    sample = bfs_sample(size, seed=1)
    start = time.perf_counter()
    p3 = P3(sample.to_program(), P3Config(hop_limit=MAINTENANCE_HOP_LIMIT))
    p3.evaluate()
    maintenance = time.perf_counter() - start

    targets = sorted(map(str, p3.derived_atoms("mutualTrustPath")))
    targets = targets[:QUERY_COUNT]
    start = time.perf_counter()
    for key in targets:
        extract_polynomial(p3.graph, key, hop_limit=MAINTENANCE_HOP_LIMIT)
    query = time.perf_counter() - start
    return maintenance, query, len(targets)


def test_fig10_query_vs_maintenance(benchmark):
    rows = []
    for size in _sizes():
        maintenance, query, queried = _run_size(size)
        rows.append([size, maintenance, query, queried])

    record_table(
        "fig10_query_vs_maintenance",
        "Figure 10: provenance query time vs maintenance time (hop limit 4,"
        " %d queried tuples per sample)" % QUERY_COUNT,
        ["sample size", "maintenance (s)", "query (s)", "tuples queried"],
        rows,
    )

    # Shape: query time is same order of magnitude (within ~10x either way)
    # and grows slower than maintenance toward larger sizes.
    for size, maintenance, query, queried in rows:
        if queried:
            assert query < maintenance * 10
    if len(rows) >= 2 and rows[0][2] > 0:
        maintenance_growth = rows[-1][1] / max(rows[0][1], 1e-9)
        query_growth = rows[-1][2] / max(rows[0][2], 1e-9)
        assert query_growth < maintenance_growth * 3

    benchmark.pedantic(_run_size, args=(_sizes()[0],), rounds=2, iterations=1)
