"""Unit tests for exact probability computation."""

import pytest

from tests.conftest import make_polynomial, uniform_probabilities

from repro.inference.exact import (
    ExactLimitError,
    brute_force_probability,
    exact_probability,
    monomial_probabilities,
)
from repro.provenance.polynomial import Polynomial, tuple_literal


A = tuple_literal("a")
B = tuple_literal("b")


class TestTerminalCases:
    def test_zero(self):
        assert exact_probability(Polynomial.zero(), {}) == 0.0
        assert brute_force_probability(Polynomial.zero(), {}) == 0.0

    def test_one(self):
        assert exact_probability(Polynomial.one(), {}) == 1.0
        assert brute_force_probability(Polynomial.one(), {}) == 1.0

    def test_single_literal(self):
        poly = Polynomial.of([A])
        assert exact_probability(poly, {A: 0.3}) == pytest.approx(0.3)

    def test_single_monomial_product(self):
        poly = Polynomial.of([A, B])
        assert exact_probability(poly, {A: 0.5, B: 0.4}) == pytest.approx(0.2)


class TestInclusionExclusion:
    def test_independent_union(self):
        # P[a + b] = 1 - (1-pa)(1-pb), NOT pa + pb.
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.5 for lit in poly.literals()}
        assert exact_probability(poly, probs) == pytest.approx(0.75)

    def test_correlated_union(self):
        # P[a·b + a·c] = pa · (1 - (1-pb)(1-pc))
        poly = make_polynomial(("a", "b"), ("a", "c"))
        probs = uniform_probabilities(poly, 0.5)
        assert exact_probability(poly, probs) == pytest.approx(0.5 * 0.75)

    def test_acquaintance_value(self):
        # The running example's exact probability (DESIGN.md §4).
        poly = make_polynomial(
            ("r3", "t6", "r1", "l1", "l2"),
            ("r3", "t6", "r2", "k1", "k2"),
        )
        probs = {}
        for literal in poly.literals():
            probs[literal] = {
                "r1": 0.8, "r2": 0.4, "r3": 0.2,
                "t6": 1.0, "l1": 1.0, "l2": 1.0, "k1": 0.4, "k2": 0.6,
            }[literal.key]
        assert exact_probability(poly, probs) == pytest.approx(0.16384)

    def test_three_way_overlap(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("a", "c"))
        probs = uniform_probabilities(poly, 0.5)
        assert exact_probability(poly, probs) == pytest.approx(
            brute_force_probability(poly, probs))


class TestDegenerateProbabilities:
    def test_certain_literal(self):
        poly = make_polynomial(("a", "b"))
        assert exact_probability(poly, {A: 1.0, B: 0.5}) == pytest.approx(0.5)

    def test_impossible_literal(self):
        poly = make_polynomial(("a",), ("b",))
        assert exact_probability(poly, {A: 0.0, B: 0.5}) == pytest.approx(0.5)

    def test_all_certain(self):
        poly = make_polynomial(("a", "b"))
        assert exact_probability(poly, {A: 1.0, B: 1.0}) == pytest.approx(1.0)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("groups", [
        (("a",),),
        (("a", "b"), ("c",)),
        (("a", "b"), ("b", "c"), ("c", "d")),
        (("a", "b", "c"), ("a", "d"), ("e",), ("b", "e")),
        (("a", "b"), ("c", "d"), ("e", "f")),
    ])
    def test_matches(self, groups):
        poly = make_polynomial(*groups)
        probs = {lit: 0.3 + 0.1 * i
                 for i, lit in enumerate(sorted(poly.literals()))}
        assert exact_probability(poly, probs) == pytest.approx(
            brute_force_probability(poly, probs))


class TestBruteForceGuard:
    def test_refuses_large_polynomials(self):
        literals = [tuple_literal("x%d" % i) for i in range(25)]
        poly = Polynomial.from_monomials([[lit] for lit in literals])
        with pytest.raises(ExactLimitError):
            brute_force_probability(poly, {lit: 0.5 for lit in literals})

    def test_limit_configurable(self):
        poly = make_polynomial(("a",), ("b",))
        with pytest.raises(ExactLimitError):
            brute_force_probability(
                poly, uniform_probabilities(poly), max_literals=1)


class TestMonomialProbabilities:
    def test_descending_order(self):
        poly = make_polynomial(("a",), ("b", "c"))
        probs = {lit: 0.5 for lit in poly.literals()}
        values = monomial_probabilities(poly, probs)
        assert list(values) == sorted(values, reverse=True)
