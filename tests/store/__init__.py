"""Tests for the durable provenance store (repro.store)."""
