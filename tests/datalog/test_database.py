"""Unit tests for the relational store."""

import pytest

from repro.datalog.database import Database, Relation
from repro.datalog.terms import Atom, Constant, Variable, atom


X = Variable("X")
Y = Variable("Y")


class TestRelation:
    def test_add_returns_new_flag(self):
        rel = Relation("p")
        assert rel.add(atom("p", 1))
        assert not rel.add(atom("p", 1))

    def test_rejects_wrong_relation(self):
        rel = Relation("p")
        with pytest.raises(ValueError):
            rel.add(atom("q", 1))

    def test_rejects_nonground(self):
        rel = Relation("p")
        with pytest.raises(ValueError):
            rel.add(Atom("p", (X,)))

    def test_len_and_contains(self):
        rel = Relation("p")
        rel.add(atom("p", 1))
        rel.add(atom("p", 2))
        assert len(rel) == 2
        assert atom("p", 1) in rel
        assert atom("p", 3) not in rel

    def test_match_all_with_variables(self):
        rel = Relation("p")
        rel.add(atom("p", 1, "a"))
        rel.add(atom("p", 2, "b"))
        matches = list(rel.match(Atom("p", (X, Y))))
        assert len(matches) == 2

    def test_match_uses_bound_column(self):
        rel = Relation("p")
        rel.add(atom("p", 1, "a"))
        rel.add(atom("p", 2, "b"))
        matches = list(rel.match(Atom("p", (Constant(1), Y))))
        assert len(matches) == 1
        assert matches[0][Y] == Constant("a")

    def test_match_with_prior_substitution(self):
        rel = Relation("p")
        rel.add(atom("p", 1, "a"))
        rel.add(atom("p", 2, "b"))
        matches = list(rel.match(Atom("p", (X, Y)), {X: Constant(2)}))
        assert len(matches) == 1
        assert matches[0][Y] == Constant("b")

    def test_match_no_candidates(self):
        rel = Relation("p")
        rel.add(atom("p", 1))
        assert list(rel.match(Atom("p", (Constant(9),)))) == []

    def test_match_repeated_variable(self):
        rel = Relation("p")
        rel.add(atom("p", 1, 1))
        rel.add(atom("p", 1, 2))
        matches = list(rel.match(Atom("p", (X, X))))
        assert len(matches) == 1

    def test_match_atoms_yields_stored_atom(self):
        rel = Relation("p")
        stored = atom("p", 1)
        rel.add(stored)
        [(matched, subst)] = list(rel.match_atoms(Atom("p", (X,))))
        assert matched == stored
        assert subst[X] == Constant(1)


class TestDatabase:
    def test_relations_spring_into_existence(self):
        db = Database()
        assert db.count("missing") == 0
        db.add(atom("p", 1))
        assert db.count("p") == 1

    def test_contains(self):
        db = Database()
        db.add(atom("p", 1))
        assert atom("p", 1) in db
        assert atom("p", 2) not in db
        assert atom("q", 1) not in db

    def test_atoms_single_relation(self):
        db = Database()
        db.add(atom("p", 1))
        db.add(atom("q", 2))
        assert list(db.atoms("p")) == [atom("p", 1)]

    def test_atoms_all_relations_sorted_by_name(self):
        db = Database()
        db.add(atom("z", 1))
        db.add(atom("a", 1))
        names = [a.relation for a in db.atoms()]
        assert names == ["a", "z"]

    def test_atoms_missing_relation_empty(self):
        db = Database()
        assert list(db.atoms("nope")) == []

    def test_total_count(self):
        db = Database()
        db.add(atom("p", 1))
        db.add(atom("p", 2))
        db.add(atom("q", 1))
        assert db.count() == 3

    def test_match_missing_relation(self):
        db = Database()
        assert list(db.match(Atom("nope", (X,)))) == []

    def test_snapshot_counts(self):
        db = Database()
        db.add(atom("p", 1))
        db.add(atom("q", 1))
        db.add(atom("q", 2))
        assert db.snapshot_counts() == {"p": 1, "q": 2}

    def test_relations_listing(self):
        db = Database()
        db.add(atom("b", 1))
        db.add(atom("a", 1))
        assert db.relations() == ["a", "b"]


class TestUnindexedRelations:
    def test_unindexed_relation_stores_and_scans(self):
        db = Database()
        db.mark_unindexed("log")
        db.add(atom("log", 1, "a"))
        db.add(atom("log", 2, "b"))
        assert db.count("log") == 2
        assert not db.relation("log").indexed
        # Matching still works, via full scan.
        matches = list(db.match(Atom("log", (Constant(1), Y))))
        assert len(matches) == 1

    def test_mark_after_creation_rejected(self):
        db = Database()
        db.add(atom("log", 1))
        with pytest.raises(ValueError):
            db.mark_unindexed("log")

    def test_indexed_by_default(self):
        db = Database()
        db.add(atom("p", 1))
        assert db.relation("p").indexed
