"""Unit tests for the vectorized Monte-Carlo backend."""

import numpy as np
import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.inference.parallel_mc import (
    CompiledPolynomial,
    parallel_conditioned_pair,
    parallel_probability,
)
from repro.provenance.polynomial import Monomial, Polynomial, tuple_literal

A = tuple_literal("a")
B = tuple_literal("b")


class TestCompiledPolynomial:
    def test_variable_count(self):
        poly = make_polynomial(("a", "b"), ("c",))
        compiled = CompiledPolynomial(poly)
        assert compiled.variable_count == 3

    def test_index_stable_and_sorted(self):
        poly = make_polynomial(("b", "a"))
        compiled = CompiledPolynomial(poly)
        assert compiled.literals == sorted(poly.literals())
        assert compiled.index_of(compiled.literals[0]) == 0

    def test_probability_vector_order(self):
        poly = make_polynomial(("a", "b"))
        compiled = CompiledPolynomial(poly)
        probs = {A: 0.25, B: 0.75}
        vector = compiled.probability_vector(probs)
        assert vector[compiled.index_of(A)] == 0.25
        assert vector[compiled.index_of(B)] == 0.75

    def test_evaluate_matrix_matches_python(self):
        poly = make_polynomial(("a", "b"), ("c",))
        compiled = CompiledPolynomial(poly)
        literals = compiled.literals
        rows = np.array([
            [True, True, False],
            [False, False, True],
            [True, False, False],
            [False, False, False],
        ])
        expected = [
            poly.evaluate(dict(zip(literals, row))) for row in rows
        ]
        assert list(compiled.evaluate_matrix(rows)) == expected

    def test_true_polynomial_rows_all_satisfied(self):
        compiled = CompiledPolynomial(Polynomial.one())
        matrix = np.zeros((4, 0), dtype=bool)
        assert compiled.evaluate_matrix(matrix).all()


class TestParallelProbability:
    def test_terminal_polynomials(self):
        assert parallel_probability(Polynomial.zero(), {}, 10).value == 0.0
        assert parallel_probability(Polynomial.one(), {}, 10).value == 1.0

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            parallel_probability(Polynomial.of([A]), {A: 0.5}, samples=-1)

    def test_seed_reproducible(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly)
        first = parallel_probability(poly, probs, 1000, seed=42)
        second = parallel_probability(poly, probs, 1000, seed=42)
        assert first.value == second.value

    def test_converges_to_exact(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=9)
        truth = exact_probability(poly, probs)
        estimate = parallel_probability(poly, probs, 60000, seed=1)
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= truth <= high

    def test_compiled_reuse(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly)
        compiled = CompiledPolynomial(poly)
        rng = np.random.default_rng(0)
        first = parallel_probability(
            poly, probs, 2000, rng=rng, compiled=compiled)
        second = parallel_probability(
            poly, probs, 2000, rng=rng, compiled=compiled)
        assert 0.0 <= first.value <= 1.0
        assert 0.0 <= second.value <= 1.0


class TestConditionedPair:
    def test_influence_estimate_matches_exact(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = {lit: 0.5 for lit in poly.literals()}
        high, low = parallel_conditioned_pair(
            poly, probs, A, samples=80000, seed=5)
        exact_high = exact_probability(poly.restrict(A, True), probs)
        exact_low = exact_probability(poly.restrict(A, False), probs)
        assert high.value == pytest.approx(exact_high, abs=0.01)
        assert low.value == pytest.approx(exact_low, abs=0.01)

    def test_counterfactual_literal(self):
        poly = make_polynomial(("a",))
        high, low = parallel_conditioned_pair(
            poly, {A: 0.5}, A, samples=100, seed=5)
        assert high.value == 1.0
        assert low.value == 0.0


class TestBatchSeedIndependence:
    """Regression tests for the correlated-worker-stream bug: the batch
    sampler used ``seed + i`` per polynomial, so two batches seeded with
    nearby offsets re-used each other's streams verbatim."""

    def _batch(self, seed, count=4, samples=2000):
        from repro.inference.parallel_mc import batch_parallel_probability
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly, seed=0)
        return batch_parallel_probability(
            [poly] * count, probs, samples=samples, seed=seed,
            max_workers=2)

    def test_workers_draw_distinct_streams(self):
        estimates = self._batch(seed=0)
        hit_counts = [e.hits for e in estimates]
        # Identical streams would make every worker's estimate identical.
        assert len(set(hit_counts)) > 1

    def test_nearby_seeds_do_not_share_streams(self):
        # Under seed+i, batch(seed=0) worker i+1 equals batch(seed=1)
        # worker i.  SeedSequence.spawn must break that overlap.
        first = self._batch(seed=0)
        second = self._batch(seed=1)
        overlaps = [
            first[i + 1].hits == second[i].hits
            for i in range(len(first) - 1)
        ]
        assert not all(overlaps)

    def test_batch_reproducible_and_order_independent(self):
        from repro.inference.parallel_mc import batch_parallel_probability
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly, seed=0)
        serial = batch_parallel_probability(
            [poly] * 3, probs, samples=1000, seed=5, max_workers=1)
        threaded = batch_parallel_probability(
            [poly] * 3, probs, samples=1000, seed=5, max_workers=3)
        assert [e.value for e in serial] == [e.value for e in threaded]

    def test_empty_batch(self):
        from repro.inference.parallel_mc import batch_parallel_probability
        assert batch_parallel_probability([], {}, samples=10) == []


class TestBitsetPacking:
    """The packed-bitset representation: masks, multi-word polynomials,
    and the packed/unpacked evaluation agreement (replaces the retired
    float32-matmul membership tests)."""

    def test_word_count(self):
        assert CompiledPolynomial(make_polynomial(("a", "b"))).words == 1
        wide = Polynomial([
            Monomial([tuple_literal("v%03d" % i) for i in range(70)])])
        assert CompiledPolynomial(wide).words == 2

    def test_pack_rows_round_trip(self):
        poly = make_polynomial(("a", "b"), ("c",))
        compiled = CompiledPolynomial(poly)
        rng = np.random.default_rng(0)
        matrix = rng.random((16, compiled.variable_count)) < 0.5
        packed = compiled.pack_rows(matrix)
        for row in range(matrix.shape[0]):
            for column in range(matrix.shape[1]):
                word, bit = divmod(column, 64)
                stored = bool((int(packed[row, word]) >> bit) & 1)
                assert stored == bool(matrix[row, column])

    def test_multi_word_monomial_evaluates_correctly(self):
        wide = [tuple_literal("v%03d" % i) for i in range(70)]
        # One monomial spanning both uint64 words plus a disjoint narrow
        # one (a subset monomial would absorb the wide one away).
        poly = Polynomial([Monomial(wide), Monomial([A])])
        compiled = CompiledPolynomial(poly)
        assert compiled.variable_count == 71
        assert compiled.words == 2
        narrow_idx = compiled.index_of(A)
        high_idx = compiled.index_of(wide[-1])
        assert high_idx >= 64  # the wide monomial really crosses a word

        all_true = np.ones((1, 71), dtype=bool)
        assert compiled.evaluate_matrix(all_true).all()
        # Clearing a bit in the *second* word breaks only the wide
        # monomial; the narrow one still satisfies.
        missing_high = all_true.copy()
        missing_high[0, high_idx] = False
        assert compiled.evaluate_matrix(missing_high).all()
        # Clearing the narrow literal too kills both monomials.
        missing_both = missing_high.copy()
        missing_both[0, narrow_idx] = False
        assert not compiled.evaluate_matrix(missing_both).any()

    def test_packed_and_matrix_paths_agree(self):
        poly = make_polynomial(("a", "b", "c"), ("d",), ("b", "d"))
        compiled = CompiledPolynomial(poly)
        rng = np.random.default_rng(5)
        matrix = rng.random((256, compiled.variable_count)) < 0.5
        packed = compiled.pack_rows(matrix)
        assert (compiled.evaluate_packed(packed)
                == compiled.evaluate_matrix(matrix)).all()

    def test_satisfaction_matrix_matches_python(self):
        poly = make_polynomial(("a", "b", "c"), ("d",), ("b", "d"))
        compiled = CompiledPolynomial(poly)
        rng = np.random.default_rng(9)
        matrix = rng.random((64, compiled.variable_count)) < 0.5
        satisfaction = compiled.satisfaction_matrix(matrix)
        for column, monomial in enumerate(compiled.monomial_order):
            assert compiled.monomial_column(monomial) == column
            for row in range(matrix.shape[0]):
                assignment = dict(zip(compiled.literals, matrix[row]))
                assert satisfaction[row, column] \
                    == monomial.evaluate(assignment)

    def test_sampling_agrees_with_exact(self):
        poly = make_polynomial(("a", "b", "c"), ("d",))
        probs = random_probabilities(poly, seed=2)
        truth = exact_probability(poly, probs)
        compiled = CompiledPolynomial(poly)
        estimate = parallel_probability(
            poly, probs, samples=60000, seed=3, compiled=compiled)
        assert estimate.value == pytest.approx(truth, abs=0.02)
