"""Unit tests for why-not provenance."""

import pytest

from repro import P3
from repro.data import ACQUAINTANCE
from repro.datalog.parser import parse_atom, parse_program
from repro.queries.whynot import WhyNotReport, why_not


@pytest.fixture(scope="module")
def acq():
    p3 = P3.from_source(ACQUAINTANCE)
    p3.evaluate()
    return p3


class TestDerivableTuples:
    def test_present_tuple_reports_derivable(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('know("Ben","Elena")'))
        assert report.derivable
        assert not report.candidates
        assert "IS derivable" in report.to_text()

    def test_base_tuple_reports_derivable(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('live("Steve","DC")'))
        assert report.derivable


class TestMissingSubgoals:
    def test_missing_live_tuple_identified(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('know("Mary","Steve")'))
        assert not report.derivable
        text = report.to_text()
        # Mary and Steve live in different cities: both near-misses show.
        assert 'MISSING live("Steve","NYC")' in text \
            or 'MISSING live("Mary",C)' in text

    def test_missing_hobby_identified(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('know("Mary","Steve")'))
        r2_candidates = [c for c in report.candidates
                         if c.rule_label == "r2"]
        assert r2_candidates
        assert any('like("Mary"' in key
                   for c in r2_candidates for key in c.missing)

    def test_candidates_sorted_by_repair_size(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('know("Mary","Steve")'))
        sizes = [c.repair_size for c in report.candidates]
        assert sizes == sorted(sizes)

    def test_satisfied_prefix_reported(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('know("Mary","Steve")'))
        best = report.best
        assert best is not None
        assert best.repair_size == 1
        assert best.satisfied  # at least one subgoal did match


class TestFailedGuards:
    def test_self_pair_blocked_by_guard(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('know("Steve","Steve")'))
        best = report.best
        assert best is not None
        assert best.repair_size == 1
        assert not best.missing
        assert '"Steve"!="Steve"' in str(best.failed_guards[0])

    def test_guard_rendering_uses_bindings(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('know("Steve","Steve")'))
        assert "BLOCKED by guard" in report.to_text()


class TestEdgeCases:
    def test_no_matching_rule_head(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom("unheard(1)"))
        assert not report.derivable
        assert not report.candidates
        assert "no rule head matches" in report.to_text()

    def test_nonground_target_rejected(self, acq):
        with pytest.raises(ValueError):
            why_not(acq.program, acq.database, parse_atom("know(X,Y)"))

    def test_arity_mismatch_no_candidates(self, acq):
        report = why_not(acq.program, acq.database,
                         parse_atom('know("a")'))
        assert not report.candidates

    def test_empty_database(self):
        program = parse_program("""
            r1 1.0: d(X) :- p(X), q(X).
            p(1).
        """)
        p3 = P3(program)
        p3.evaluate()
        report = why_not(p3.program, p3.database, parse_atom("d(1)"))
        [candidate] = [c for c in report.candidates
                       if c.rule_label == "r1"][:1]
        assert "q(1)" in candidate.missing


class TestFacadeAndRanking:
    def test_facade_method(self, acq):
        report = acq.why_not("know", "Mary", "Ben")
        assert isinstance(report, WhyNotReport)
        assert not report.derivable

    def test_best_is_minimum_repair(self, acq):
        report = acq.why_not("know", "Mary", "Steve")
        assert report.best.repair_size == min(
            c.repair_size for c in report.candidates)

    def test_adding_the_missing_tuple_fixes_it(self, acq):
        # Close the loop: the report says like("Mary",L) is missing;
        # adding it makes the tuple derivable.
        p3 = P3.from_source(
            ACQUAINTANCE + 't9 1.0: like("Mary","Veggies").')
        p3.evaluate()
        assert p3.holds("know", "Mary", "Steve")
