"""Unit tests for sequential Monte-Carlo estimation."""

import random

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.inference.montecarlo import (
    MonteCarloEstimate,
    adaptive_probability,
    conditioned_probability,
    monte_carlo_probability,
    sample_assignment,
)
from repro.provenance.polynomial import Polynomial, tuple_literal

A = tuple_literal("a")
B = tuple_literal("b")


class TestEstimateObject:
    def test_standard_error(self):
        estimate = MonteCarloEstimate(0.5, 10000, 5000)
        assert estimate.standard_error == pytest.approx(0.005)

    def test_zero_samples_infinite_error(self):
        assert MonteCarloEstimate(0.0, 0, 0).standard_error == float("inf")

    def test_confidence_interval_clipped(self):
        estimate = MonteCarloEstimate(0.001, 100, 0)
        low, high = estimate.confidence_interval()
        assert low >= 0.0
        assert high <= 1.0

    def test_interval_contains_value(self):
        estimate = MonteCarloEstimate(0.4, 1000, 400)
        low, high = estimate.confidence_interval()
        assert low <= 0.4 <= high


class TestSampling:
    def test_sample_assignment_covers_literals(self):
        rng = random.Random(0)
        assignment = sample_assignment([A, B], {A: 0.5, B: 0.5}, rng)
        assert set(assignment) == {A, B}

    def test_certain_literal_always_true(self):
        rng = random.Random(0)
        for _ in range(50):
            assert sample_assignment([A], {A: 1.0}, rng)[A]

    def test_impossible_literal_always_false(self):
        rng = random.Random(0)
        for _ in range(50):
            assert not sample_assignment([A], {A: 0.0}, rng)[A]


class TestEstimation:
    def test_terminal_polynomials(self):
        assert monte_carlo_probability(Polynomial.zero(), {}, 10).value == 0.0
        assert monte_carlo_probability(Polynomial.one(), {}, 10).value == 1.0

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            monte_carlo_probability(Polynomial.of([A]), {A: 0.5}, samples=0)

    def test_seed_reproducible(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly)
        first = monte_carlo_probability(poly, probs, 1000, seed=42)
        second = monte_carlo_probability(poly, probs, 1000, seed=42)
        assert first.value == second.value

    def test_converges_within_ci(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=9)
        truth = exact_probability(poly, probs)
        estimate = monte_carlo_probability(poly, probs, 40000, seed=7)
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= truth <= high

    def test_certain_formula(self):
        poly = make_polynomial(("a",))
        estimate = monte_carlo_probability(poly, {A: 1.0}, 100, seed=1)
        assert estimate.value == 1.0


class TestConditioned:
    def test_conditioning_on_true(self):
        poly = make_polynomial(("a", "b"))
        estimate = conditioned_probability(
            poly, {A: 0.2, B: 0.5}, {A: True}, samples=20000, seed=3)
        assert estimate.value == pytest.approx(0.5, abs=0.02)

    def test_conditioning_on_false(self):
        poly = make_polynomial(("a", "b"))
        estimate = conditioned_probability(
            poly, {A: 0.2, B: 0.5}, {A: False}, samples=100, seed=3)
        assert estimate.value == 0.0


class TestAdaptive:
    def test_stops_at_target_error(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.5 for lit in poly.literals()}
        estimate = adaptive_probability(
            poly, probs, target_standard_error=0.01, batch=1000, seed=11)
        assert estimate.standard_error <= 0.012
        assert estimate.samples < 500000

    def test_respects_max_samples(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.5 for lit in poly.literals()}
        estimate = adaptive_probability(
            poly, probs, target_standard_error=1e-6,
            batch=1000, max_samples=3000, seed=11)
        assert estimate.samples == 3000

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            adaptive_probability(Polynomial.of([A]), {A: 0.5},
                                 target_standard_error=0.0)

    def test_rare_event_keeps_sampling_past_hitless_batches(self):
        # True p = 1e-4 (two independent literals at 0.01).  A 2000-sample
        # batch is usually hitless, so the plug-in variance p̂(1-p̂) is zero
        # and the old stopping rule returned a false-confident 0.0 after a
        # single batch.  The Wilson floor keeps the error estimate honest:
        # resolving p to ±4e-5 needs tens of thousands of samples.
        poly = make_polynomial(("a", "b"))
        probs = {lit: 0.01 for lit in poly.literals()}
        for seed in (1, 7, 42):
            estimate = adaptive_probability(
                poly, probs, target_standard_error=4e-5, batch=2000,
                seed=seed)
            assert estimate.samples >= 20000, (
                "seed %d stopped after only %d samples" % (
                    seed, estimate.samples))
            assert 0.0 < estimate.value < 5e-4

    def test_always_draws_at_least_two_batches(self):
        # Even a trivially-loose target must not declare convergence off a
        # single batch (the old `total >= batch` guard was always true).
        poly = make_polynomial(("a",))
        estimate = adaptive_probability(
            poly, {A: 0.5}, target_standard_error=0.4, batch=100, seed=5)
        assert estimate.samples >= 200

    def test_degenerate_polynomials_short_circuit(self):
        zero = adaptive_probability(Polynomial.zero(), {}, seed=0)
        assert zero.value == 0.0
        one = adaptive_probability(Polynomial.one(), {}, seed=0)
        assert one.value == 1.0
