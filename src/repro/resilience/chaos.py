"""The chaos harness: inject faults into a live batch, assert survival.

``p3 chaos`` (and :func:`run_chaos`) builds a seeded random trust-network
program, computes reference probabilities on a clean system, then re-runs
the same batch with faults injected through the registry's
:func:`~repro.inference.registry.override_backend` hook — the same
mechanism the differential audit harness uses for its known-bug
injections (:mod:`repro.audit.faults`):

- **transient exceptions** on the ``exact`` backend (high rate, so the
  retry policy and the circuit breaker both get exercised);
- **budget blowups** on the ``bdd`` backend (typed
  :class:`~repro.core.errors.BudgetExceededError`, the fall-through
  class);
- **delays** on the ``parallel`` backend (slow but correct);
- a **pool hang**: one spec routed to an ``mc`` override that blocks on
  an event until teardown, wedging its worker so the executor's pool
  supervision has something real to detect.

The harness asserts the resilience contract rather than correctness of
any single backend: every spec must still yield a *well-formed* outcome
(a value or a typed error — never an unhandled exception), every
injected fault class must be observed at least once, and every answered
probability must agree with its clean-system reference within the
reported standard-error tolerance.  The result is a :class:`ChaosReport`
(serialized by :func:`repro.io.serialize.chaos_report_to_json`).
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import telemetry
from ..core.config import P3Config
from ..core.errors import BudgetExceededError, TransientInferenceError
from ..core.system import P3
from ..exec.executor import QueryExecutor
from ..inference.registry import BackendReading, get_backend, override_backend
from .breaker import BreakerPolicy
from .budgets import ResourceBudget
from .config import ResilienceConfig
from .retry import RetryPolicy

#: Fault classes the harness injects; every run must observe each ≥ once
#: for the report to come back ok.
CHAOS_FAULT_CLASSES: Tuple[str, ...] = (
    "transient-exception", "budget-blowup", "delay", "pool-hang")

#: Process-level fault classes (``p3 chaos --process``): delivered to
#: subprocess isolation workers, which the thread-level classes above
#: cannot kill.  Mirrors :data:`repro.resilience.isolation.WORKER_FAULTS`.
PROCESS_FAULT_CLASSES: Tuple[str, ...] = ("kill9", "oom", "wedge-native")

#: Agreement threshold in standard errors for sampling answers, and the
#: absolute floor for exact ones (covers float noise across backends).
ACCURACY_SIGMA = 5.0
ACCURACY_ATOL = 1e-9


def build_chaos_program(people: int = 8, edge_rate: float = 0.5,
                        seed: int = 0) -> str:
    """A seeded random trust network with the recursive ``know`` rules.

    The same shape as the paper's case-study programs: probabilistic base
    facts plus a transitive-closure rule pair, so the extracted
    polynomials are nontrivial DNFs with shared sub-derivations.
    """
    rng = random.Random(seed)
    names = ["p%d" % index for index in range(people)]
    lines = []
    for i, source in enumerate(names):
        for target in names[i + 1:]:
            if rng.random() < edge_rate:
                lines.append('%.2f::trusts("%s","%s").'
                             % (rng.uniform(0.3, 0.95), source, target))
    lines.append("know(X,Y) :- trusts(X,Y).")
    lines.append("know(X,Y) :- trusts(X,Z), know(Z,Y).")
    return "\n".join(lines) + "\n"


class FaultPlan:
    """Seeded probabilistic fault injection shared across worker threads.

    Each injected backend override rolls this plan's RNG (behind a lock —
    worker threads share it) and either misbehaves or delegates to the
    genuine implementation.  ``observed`` counts firings per fault class.
    """

    def __init__(self, seed: int,
                 transient_rate: float = 0.85,
                 budget_rate: float = 0.5,
                 delay_rate: float = 0.6,
                 delay_seconds: float = 0.002) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.transient_rate = transient_rate
        self.budget_rate = budget_rate
        self.delay_rate = delay_rate
        self.delay_seconds = delay_seconds
        self.observed: Dict[str, int] = {name: 0 for name
                                         in CHAOS_FAULT_CLASSES}
        #: Released by :func:`run_chaos` at teardown so the deliberately
        #: wedged worker threads can exit (pool threads are non-daemon).
        self.hang_release = threading.Event()

    def _fires(self, rate: float) -> bool:
        with self._lock:
            return self._rng.random() < rate

    def _saw(self, fault: str) -> None:
        with self._lock:
            self.observed[fault] += 1
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_chaos_faults_total",
                help="Chaos faults injected, by class",
                labelnames=("fault",)).inc(fault=fault)

    def all_observed(self) -> bool:
        with self._lock:
            return all(count > 0 for count in self.observed.values())

    # -- the faulty backend implementations ------------------------------------

    def _faulty_exact(self, polynomial, probabilities,
                      request) -> BackendReading:
        if self._fires(self.transient_rate):
            self._saw("transient-exception")
            raise TransientInferenceError(
                "injected chaos fault: exact backend flaked")
        return self._genuine["exact"](polynomial, probabilities, request)

    def _faulty_bdd(self, polynomial, probabilities,
                    request) -> BackendReading:
        if self._fires(self.budget_rate):
            self._saw("budget-blowup")
            raise BudgetExceededError(
                "injected chaos fault: bdd blew its budget",
                resource="chaos", limit=0, used=1)
        return self._genuine["bdd"](polynomial, probabilities, request)

    def _slow_parallel(self, polynomial, probabilities,
                       request) -> BackendReading:
        if self._fires(self.delay_rate):
            self._saw("delay")
            time.sleep(self.delay_seconds)
        return self._genuine["parallel"](polynomial, probabilities, request)

    def _hanging_mc(self, polynomial, probabilities,
                    request) -> BackendReading:
        self._saw("pool-hang")
        self.hang_release.wait()
        return self._genuine["mc"](polynomial, probabilities, request)

    @contextlib.contextmanager
    def install(self) -> Iterator[None]:
        """Swap the faulty implementations into the backend registry."""
        self._genuine = {
            name: get_backend(name)._fn
            for name in ("exact", "bdd", "parallel", "mc")
        }
        with override_backend("exact", self._faulty_exact), \
                override_backend("bdd", self._faulty_bdd), \
                override_backend("parallel", self._slow_parallel), \
                override_backend("mc", self._hanging_mc):
            yield


class ChaosReport:
    """Everything one chaos run measured, plus the pass/fail verdict."""

    def __init__(self, seed: int, specs: int) -> None:
        self.seed = seed
        self.specs = specs
        self.well_formed = 0
        self.answered = 0
        self.errored = 0
        self.outcomes: List[dict] = []
        self.faults_observed: Dict[str, int] = {}
        self.retries = 0
        self.fallbacks = 0
        self.breaker_trips = 0
        self.pool_events: Dict[str, int] = {}
        self.accuracy_checked = 0
        self.max_abs_error = 0.0
        self.accuracy_failures: List[dict] = []
        self.unhandled: Optional[str] = None
        self.seconds = 0.0

    @property
    def ok(self) -> bool:
        return (self.unhandled is None
                and self.well_formed == self.specs
                and all(self.faults_observed.get(name, 0) > 0
                        for name in CHAOS_FAULT_CLASSES)
                and not self.accuracy_failures)

    def summary(self) -> str:
        """One-line digest for the CLI's non-JSON output."""
        fault_bits = ", ".join(
            "%s=%d" % (name, self.faults_observed.get(name, 0))
            for name in CHAOS_FAULT_CLASSES)
        return ("chaos %s: %d/%d well-formed (%d answered, %d errors), "
                "%d retries, %d fallbacks, %d breaker trips, "
                "max |err| %.2e over %d checks, faults [%s], %.2fs"
                % ("OK" if self.ok else "FAILED",
                   self.well_formed, self.specs, self.answered,
                   self.errored, self.retries, self.fallbacks,
                   self.breaker_trips, self.max_abs_error,
                   self.accuracy_checked, fault_bits, self.seconds))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "kind": "chaos_report",
            "ok": self.ok,
            "seed": self.seed,
            "specs": self.specs,
            "seconds": round(self.seconds, 6),
            "well_formed": self.well_formed,
            "answered": self.answered,
            "errored": self.errored,
            "unhandled": self.unhandled,
            "faults_observed": dict(self.faults_observed),
            "resilience": {
                "retries": self.retries,
                "fallbacks": self.fallbacks,
                "breaker_trips": self.breaker_trips,
                "pool_events": dict(self.pool_events),
            },
            "accuracy": {
                "checked": self.accuracy_checked,
                "max_abs_error": self.max_abs_error,
                "sigma": ACCURACY_SIGMA,
                "failures": list(self.accuracy_failures),
            },
            "outcomes": list(self.outcomes),
        }

    def __repr__(self) -> str:
        return "ChaosReport(ok=%r, %d/%d well-formed, %d fallbacks)" % (
            self.ok, self.well_formed, self.specs, self.fallbacks)


def _is_well_formed(outcome: Any) -> bool:
    """One outcome, exactly one of value/error, and it serializes."""
    if (outcome.value is None) == (outcome.error is None):
        return False
    try:
        import json
        json.dumps(outcome.to_dict())
    except (TypeError, ValueError):
        return False
    return True


def run_chaos(seed: int = 0,
              spec_count: int = 50,
              people: int = 13,
              samples: int = 20000,
              max_workers: int = 4,
              pool_hang_seconds: float = 0.5,
              plan: Optional[FaultPlan] = None,
              include_outcomes: bool = False) -> ChaosReport:
    """One full chaos run; see the module docstring for what it asserts.

    Deterministic program and fault *rates* per ``seed`` (exact fault
    sequencing varies with worker scheduling, but every assertion the
    report makes is scheduling-independent).
    """
    program = build_chaos_program(people=people, seed=seed)
    started = time.perf_counter()

    # Reference values from a clean, unfaulted system: exact inference,
    # no resilience machinery in the way.
    clean = P3.from_source(program, config=P3Config(
        probability_method="exact", hop_limit=4, seed=seed))
    clean.evaluate()
    keys: List[str] = []
    references: Dict[str, float] = {}
    with QueryExecutor(clean, max_workers=1) as reference_executor:
        for key in _candidate_keys(clean, people):
            try:
                references[key] = reference_executor.probability(
                    key, method="exact")
            except Exception:  # noqa: BLE001 — not derivable / too big
                continue
            keys.append(key)
            if len(keys) >= spec_count - 1:
                break

    specs: List[object] = list(keys)
    hang_key = keys[0] if keys else None
    if hang_key is not None:
        # One spec routed to the blocking mc override: the pool-hang
        # fault.  A distinct spec (different method ⇒ different cache
        # identity), so it does not collapse into its clean twin.
        specs.append({"kind": "probability", "key": hang_key,
                      "params": {"method": "mc"}})

    resilience = ResilienceConfig(
        budget=ResourceBudget(max_monomials=200000, max_node_visits=2000000),
        ladder=("exact", "bdd", "parallel"),
        retry=RetryPolicy(max_attempts=3, backoff_seconds=0.001,
                          max_backoff_seconds=0.01),
        breaker=BreakerPolicy(failure_threshold=0.5, window_size=8,
                              min_calls=4, cooldown_seconds=30.0),
        pool_hang_seconds=pool_hang_seconds,
        pool_max_rebuilds=1,
    )
    config = P3Config(probability_method="exact", hop_limit=4, seed=seed,
                      samples=samples, resilience=resilience)

    report = ChaosReport(seed, len(specs))
    chaos_plan = plan if plan is not None else FaultPlan(seed)
    try:
        system = P3.from_source(program, config=config)
        system.evaluate()
        with chaos_plan.install():
            with QueryExecutor(system, max_workers=max_workers) as executor:
                try:
                    batch = executor.run(specs)
                except Exception as exc:  # noqa: BLE001 — the one thing
                    # the harness exists to rule out
                    report.unhandled = "%s: %s" % (type(exc).__name__, exc)
                    return report
                _fill_report(report, batch, references, executor,
                             include_outcomes)
    finally:
        chaos_plan.hang_release.set()
    report.faults_observed = dict(chaos_plan.observed)
    report.seconds = time.perf_counter() - started
    return report


def _candidate_keys(system: P3, people: int) -> Iterator[str]:
    names = ["p%d" % index for index in range(people)]
    for source in names:
        for target in names:
            if source != target:
                key = 'know("%s","%s")' % (source, target)
                if key in system.graph:
                    yield key


def _fill_report(report: ChaosReport, batch, references: Dict[str, float],
                 executor: QueryExecutor, include_outcomes: bool) -> None:
    for outcome in batch:
        if _is_well_formed(outcome):
            report.well_formed += 1
        if outcome.ok:
            report.answered += 1
        else:
            report.errored += 1
        record = outcome.resilience
        if record is not None:
            report.retries += record.retries
            if record.used_fallback:
                report.fallbacks += 1
        if include_outcomes:
            report.outcomes.append(outcome.to_dict())
        _check_accuracy(report, outcome, references)
    board = executor.breaker_board
    if board is not None:
        report.breaker_trips = sum(
            snapshot["trips"] for snapshot in board.to_dict().values())
    report.pool_events = executor.stats().get("pool", {}).get("events", {})


def _check_accuracy(report: ChaosReport, outcome,
                    references: Dict[str, float]) -> None:
    """Fallback answers must agree with the clean reference.

    Exact answers must match to float noise; sampling answers within
    ``ACCURACY_SIGMA`` reported standard errors (plus a floor for the
    clamp at the [0, 1] boundary).
    """
    if not outcome.ok or not isinstance(outcome.value, float):
        return
    reference = references.get(outcome.spec.key)
    if reference is None or outcome.spec.params.get("method") == "mc":
        return
    record = outcome.resilience
    stderr = record.stderr if record is not None else None
    if stderr:
        tolerance = max(ACCURACY_SIGMA * stderr, 1e-4)
    else:
        tolerance = ACCURACY_ATOL
    error = abs(min(1.0, max(0.0, outcome.value)) - reference)
    report.accuracy_checked += 1
    report.max_abs_error = max(report.max_abs_error, error)
    if error > tolerance:
        report.accuracy_failures.append({
            "key": outcome.spec.key,
            "value": outcome.value,
            "reference": reference,
            "tolerance": tolerance,
            "answered_by": record.answered_by if record else None,
        })


# ---------------------------------------------------------------------------
# Process-mode chaos: kill, starve, and wedge subprocess isolation workers.
# ---------------------------------------------------------------------------


class ProcessChaosReport:
    """Verdict for one process-isolation chaos run.

    ``ok`` requires: no unhandled driver exception, every exchange
    well-formed (each injected fault surfaced as exactly its typed
    error, every clean query answered correctly), all three process
    fault classes observed, respawns bounded by the number of
    worker-killing faults, and the pool back at full strength with no
    excess processes at the end.
    """

    def __init__(self, seed: int, rounds: int) -> None:
        self.seed = seed
        self.rounds = rounds
        self.exchanges = 0
        self.well_formed = 0
        self.answered = 0
        self.faulted = 0
        self.faults_observed: Dict[str, int] = {
            name: 0 for name in PROCESS_FAULT_CLASSES}
        self.malformed: List[dict] = []
        self.pool: Dict[str, int] = {}
        self.respawn_bound = 0
        self.unhandled: Optional[str] = None
        self.seconds = 0.0

    @property
    def ok(self) -> bool:
        return (self.unhandled is None
                and self.exchanges > 0
                and self.well_formed == self.exchanges
                and all(count > 0 for count in self.faults_observed.values())
                and self.pool.get("respawned", 0) <= self.respawn_bound
                and self.pool.get("live", 0) <= self.pool.get("workers", 0))

    def summary(self) -> str:
        fault_bits = ", ".join(
            "%s=%d" % (name, self.faults_observed.get(name, 0))
            for name in PROCESS_FAULT_CLASSES)
        return ("process chaos %s: %d/%d well-formed exchanges "
                "(%d answered, %d faulted), faults [%s], "
                "%d respawns (bound %d), %d/%d workers live, %.2fs"
                % ("OK" if self.ok else "FAILED", self.well_formed,
                   self.exchanges, self.answered, self.faulted, fault_bits,
                   self.pool.get("respawned", 0), self.respawn_bound,
                   self.pool.get("live", 0), self.pool.get("workers", 0),
                   self.seconds))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "kind": "process_chaos_report",
            "ok": self.ok,
            "seed": self.seed,
            "rounds": self.rounds,
            "seconds": round(self.seconds, 6),
            "exchanges": self.exchanges,
            "well_formed": self.well_formed,
            "answered": self.answered,
            "faulted": self.faulted,
            "faults_observed": dict(self.faults_observed),
            "respawn_bound": self.respawn_bound,
            "pool": dict(self.pool),
            "malformed": list(self.malformed),
            "unhandled": self.unhandled,
        }

    def __repr__(self) -> str:
        return "ProcessChaosReport(ok=%r, %d/%d well-formed)" % (
            self.ok, self.well_formed, self.exchanges)


def run_process_chaos(seed: int = 0,
                      rounds: int = 3,
                      people: int = 10,
                      samples: int = 8000,
                      workers: int = 2,
                      memory_limit_bytes: int = 512 * 1024 * 1024,
                      wedge_timeout: float = 1.5) -> ProcessChaosReport:
    """Chaos against subprocess isolation workers; see ``p3 chaos --process``.

    Each round delivers every :data:`PROCESS_FAULT_CLASSES` fault to a
    live worker — SIGKILL mid-request, an allocation loop into the
    ``RLIMIT_AS`` cap, and a native busy-loop that ignores deadlines —
    and then immediately re-queries through the same executor.  The
    contract asserted is the tentpole's: a killed or wedged worker
    surfaces as exactly its typed error (:class:`WorkerCrashError`,
    :class:`WorkerMemoryError`, :class:`WorkerTimeoutError`), the pool
    respawns a replacement, and the very next query answers correctly —
    the service process never dies and never leaks workers.
    """
    from ..core.errors import (
        WorkerCrashError, WorkerMemoryError, WorkerTimeoutError)
    from ..resilience.isolation import process_isolation_supported

    report = ProcessChaosReport(seed, rounds)
    if not process_isolation_supported():
        report.unhandled = "process isolation unsupported on this platform"
        return report
    started = time.perf_counter()

    program = build_chaos_program(people=people, seed=seed)
    clean = P3.from_source(program, config=P3Config(
        probability_method="exact", hop_limit=4, seed=seed))
    clean.evaluate()
    keys: List[str] = []
    references: Dict[str, float] = {}
    with QueryExecutor(clean, max_workers=1) as reference_executor:
        for key in _candidate_keys(clean, people):
            try:
                references[key] = reference_executor.probability(
                    key, method="exact")
            except Exception:  # noqa: BLE001 — not derivable / too big
                continue
            keys.append(key)
            # One distinct key per probe: a repeated key would answer
            # from the executor's result cache instead of proving a
            # live worker exchange after the fault.
            if len(keys) >= 3 * rounds + 1:
                break
    if len(keys) < 2:
        report.unhandled = "chaos program yielded %d keys" % len(keys)
        return report

    expected = {"kill9": WorkerCrashError,
                "oom": WorkerMemoryError,
                "wedge-native": WorkerTimeoutError}
    # Only kill9 and wedge-native cost a worker its life: an OOM-tripped
    # worker answers with a typed error over an intact pipe and survives.
    report.respawn_bound = 2 * rounds

    config = P3Config(probability_method="exact", hop_limit=4, seed=seed,
                      samples=samples, isolation="process",
                      isolation_workers=workers,
                      worker_memory_bytes=memory_limit_bytes)
    system = P3.from_source(program, config=config)
    system.evaluate()
    try:
        with QueryExecutor(system, max_workers=workers) as executor:
            # First exchange spawns the pool and proves the happy path.
            _process_probe(report, executor, keys[0], references)
            pool = executor.process_pool
            from ..provenance.extraction import extract_polynomial
            polynomial = extract_polynomial(system.graph, keys[0],
                                            hop_limit=4)
            probe_index = 0
            for _round in range(rounds):
                for fault in PROCESS_FAULT_CLASSES:
                    timeout = (wedge_timeout if fault == "wedge-native"
                               else None)
                    report.exchanges += 1
                    try:
                        pool.submit("exact", polynomial,
                                    system.probabilities,
                                    timeout=timeout, fault=fault)
                    except expected[fault]:
                        report.well_formed += 1
                        report.faulted += 1
                        report.faults_observed[fault] += 1
                    except BaseException as exc:  # noqa: BLE001
                        _process_malformed(
                            report, fault, "raised %s: %s"
                            % (type(exc).__name__, exc))
                    else:
                        _process_malformed(
                            report, fault, "returned a value instead of "
                            "raising %s" % expected[fault].__name__)
                    # Containment: the executor answers correctly right
                    # after every fault, on a respawned worker if needed.
                    probe_index += 1
                    probe = keys[probe_index % len(keys)]
                    _process_probe(report, executor, probe, references)
            report.pool = pool.stats()
    except Exception as exc:  # noqa: BLE001 — the harness's raison d'être
        report.unhandled = "%s: %s" % (type(exc).__name__, exc)
    report.seconds = time.perf_counter() - started
    return report


def _process_probe(report: ProcessChaosReport, executor: QueryExecutor,
                   key: str, references: Dict[str, float]) -> None:
    """One clean query through the process-isolated executor."""
    report.exchanges += 1
    try:
        value = executor.probability(key, method="exact")
    except BaseException as exc:  # noqa: BLE001
        _process_malformed(report, "probe:%s" % key, "raised %s: %s"
                           % (type(exc).__name__, exc))
        return
    if abs(value - references[key]) <= ACCURACY_ATOL:
        report.well_formed += 1
        report.answered += 1
    else:
        _process_malformed(report, "probe:%s" % key,
                           "answered %.12f, reference %.12f"
                           % (value, references[key]))


def _process_malformed(report: ProcessChaosReport, exchange: str,
                       problem: str) -> None:
    if len(report.malformed) < 20:
        report.malformed.append({"exchange": exchange, "problem": problem})


# ---------------------------------------------------------------------------
# Service-mode chaos: drive the HTTP front-end end-to-end under faults.
# ---------------------------------------------------------------------------

#: Envelope kinds a service response may carry; anything else is malformed.
_SERVICE_KINDS = frozenset({
    "batch_result", "update", "error", "health", "tenant_stats",
    "tenant_list", "tenant_removed"})

#: Statuses the service is allowed to answer with under chaos.  500 is
#: tolerated only when the body is still a structured error envelope.
_SERVICE_STATUSES = frozenset({200, 201, 400, 404, 409, 429, 500, 503})


class ServiceChaosReport:
    """Verdict for one service-mode chaos run.

    ``ok`` requires: no unhandled driver exception, every HTTP exchange
    well-formed (allowed status, parseable JSON envelope of a known
    kind, ``Retry-After`` present on 429/503), and every injected fault
    class observed at least once.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.requests = 0
        self.well_formed = 0
        self.by_status: Dict[str, int] = {}
        self.shed = 0
        self.server_errors = 0
        self.faults_observed: Dict[str, int] = {}
        self.malformed: List[dict] = []
        self.unhandled: Optional[str] = None
        self.final_epoch = 0
        self.seconds = 0.0

    @property
    def ok(self) -> bool:
        return (self.unhandled is None
                and self.requests > 0
                and self.well_formed == self.requests
                and all(self.faults_observed.get(name, 0) > 0
                        for name in CHAOS_FAULT_CLASSES))

    def summary(self) -> str:
        fault_bits = ", ".join(
            "%s=%d" % (name, self.faults_observed.get(name, 0))
            for name in CHAOS_FAULT_CLASSES)
        status_bits = ", ".join(
            "%s=%d" % (status, count)
            for status, count in sorted(self.by_status.items()))
        return ("service chaos %s: %d/%d well-formed HTTP exchanges "
                "[%s], %d shed (429/503), %d server errors, epoch %d, "
                "faults [%s], %.2fs"
                % ("OK" if self.ok else "FAILED", self.well_formed,
                   self.requests, status_bits, self.shed,
                   self.server_errors, self.final_epoch, fault_bits,
                   self.seconds))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "kind": "service_chaos_report",
            "ok": self.ok,
            "seed": self.seed,
            "seconds": round(self.seconds, 6),
            "requests": self.requests,
            "well_formed": self.well_formed,
            "by_status": dict(self.by_status),
            "shed": self.shed,
            "server_errors": self.server_errors,
            "final_epoch": self.final_epoch,
            "faults_observed": dict(self.faults_observed),
            "malformed": list(self.malformed),
            "unhandled": self.unhandled,
        }

    def __repr__(self) -> str:
        return "ServiceChaosReport(ok=%r, %d/%d well-formed)" % (
            self.ok, self.well_formed, self.requests)


def _service_exchange_problem(path: str, status: int,
                              headers: Dict[str, str],
                              body: bytes) -> Optional[str]:
    """None when the exchange is well-formed, else a short diagnosis."""
    import json as _json
    if status not in _SERVICE_STATUSES:
        return "unexpected status %d" % status
    if path == "/metrics" and status == 200:
        content_type = headers.get("content-type", "")
        if not content_type.startswith("text/plain"):
            return "metrics served with Content-Type %r" % content_type
        return None
    try:
        document = _json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return "unparseable body (status %d)" % status
    if not isinstance(document, dict):
        return "non-object body (status %d)" % status
    if document.get("kind") not in _SERVICE_KINDS:
        return "unknown envelope kind %r" % document.get("kind")
    if status >= 400 and document.get("kind") != "error":
        return "status %d without error envelope" % status
    if status in (429, 503) and "retry-after" not in headers:
        return "status %d without Retry-After" % status
    return None


def _build_service_workload(rng: random.Random, keys: List[str],
                            request_count: int) -> List[Tuple[str, str, Optional[dict]]]:
    """A seeded request mix: mostly queries, plus updates, scrapes, and
    deliberately bad requests.  The pool-hang batch is always included."""
    hang_batch = {"specs": [
        keys[1 % len(keys)],
        {"kind": "probability", "key": keys[0],
         "params": {"method": "mc"}},
        keys[2 % len(keys)],
    ]}
    workload: List[Tuple[str, str, Optional[dict]]] = [
        ("POST", "/tenants/chaos/query", hang_batch)]
    update_serial = [0]

    def one_request() -> Tuple[str, str, Optional[dict]]:
        roll = rng.random()
        if roll < 0.55:
            specs = rng.sample(keys, k=min(len(keys), rng.randint(2, 4)))
            return ("POST", "/tenants/chaos/query", {"specs": specs})
        if roll < 0.70:
            update_serial[0] += 1
            fact = 'chaos_t%d %.2f: trusts("p0","extra%d").' % (
                update_serial[0], rng.uniform(0.3, 0.9), update_serial[0])
            return ("POST", "/tenants/chaos/facts", {"facts": fact})
        if roll < 0.78:
            return ("GET", "/healthz", None)
        if roll < 0.86:
            return ("GET", "/metrics", None)
        if roll < 0.90:
            return ("GET", "/tenants/chaos/stats", None)
        # The bad-request tail: 404s, 400s, and an unroutable path.
        bad = rng.randint(0, 3)
        if bad == 0:
            return ("POST", "/tenants/no-such-tenant/query",
                    {"specs": ["x"]})
        if bad == 1:
            return ("POST", "/tenants/chaos/query", {"specs": "not-a-list"})
        if bad == 2:
            return ("POST", "/tenants/chaos/facts", {"facts": 42})
        return ("GET", "/no/such/route", None)

    while len(workload) < request_count:
        workload.append(one_request())
    return workload


def run_service_chaos(seed: int = 0,
                      request_count: int = 60,
                      people: int = 10,
                      samples: int = 20000,
                      pool_hang_seconds: float = 0.5,
                      max_concurrent: int = 3,
                      max_queue: int = 2,
                      driver_threads: int = 8,
                      plan: Optional[FaultPlan] = None) -> ServiceChaosReport:
    """Chaos through the front door: boot ``repro.serve`` in-process,
    install the same :class:`FaultPlan` as :func:`run_chaos`, and slam
    the HTTP API from concurrent driver threads.

    Beyond the library-level contract (typed outcomes, fault coverage),
    this asserts the *service* contract: every HTTP exchange — including
    shed ones — is a well-formed envelope with the right status code,
    and live updates interleaved with queries keep the epoch moving.
    Small admission limits are chosen on purpose so overload (429) is
    part of the exercised surface, not an error.
    """
    import http.client
    import queue as queue_module

    from ..serve import (
        AdmissionController, ProvenanceService, TenantRegistry,
        start_in_background)

    program = build_chaos_program(people=people, seed=seed)
    resilience = ResilienceConfig(
        budget=ResourceBudget(max_monomials=200000, max_node_visits=2000000),
        ladder=("exact", "bdd", "parallel"),
        retry=RetryPolicy(max_attempts=3, backoff_seconds=0.001,
                          max_backoff_seconds=0.01),
        breaker=BreakerPolicy(failure_threshold=0.5, window_size=8,
                              min_calls=4, cooldown_seconds=30.0),
        pool_hang_seconds=pool_hang_seconds,
        pool_max_rebuilds=1,
    )
    config = P3Config(probability_method="exact", hop_limit=4, seed=seed,
                      samples=samples, resilience=resilience)

    report = ServiceChaosReport(seed)
    started = time.perf_counter()
    registry = TenantRegistry(base_config=config)
    tenant = registry.create("chaos", source=program)
    keys = list(_candidate_keys(tenant.system, people))[:12]
    if len(keys) < 3:
        report.unhandled = "chaos program yielded %d keys" % len(keys)
        return report

    rng = random.Random(seed)
    workload = _build_service_workload(rng, keys, request_count)
    jobs: "queue_module.Queue" = queue_module.Queue()
    for job in workload:
        jobs.put(job)

    results_lock = threading.Lock()
    chaos_plan = plan if plan is not None else FaultPlan(seed)
    service = ProvenanceService(
        registry,
        AdmissionController(max_concurrent=max_concurrent,
                            max_queue=max_queue,
                            retry_after_seconds=0.05))

    def drive(port: int) -> None:
        import json as _json
        while True:
            try:
                method, path, body = jobs.get_nowait()
            except queue_module.Empty:
                return
            connection = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=60)
            try:
                payload = (_json.dumps(body) if body is not None else None)
                connection.request(method, path, body=payload)
                response = connection.getresponse()
                data = response.read()
                headers = {name.lower(): value
                           for name, value in response.getheaders()}
                status = response.status
            finally:
                connection.close()
            problem = _service_exchange_problem(path, status, headers, data)
            with results_lock:
                report.requests += 1
                report.by_status[str(status)] = (
                    report.by_status.get(str(status), 0) + 1)
                if status in (429, 503):
                    report.shed += 1
                if status == 500:
                    report.server_errors += 1
                if problem is None:
                    report.well_formed += 1
                elif len(report.malformed) < 20:
                    report.malformed.append({
                        "method": method, "path": path,
                        "status": status, "problem": problem})

    try:
        with chaos_plan.install():
            handle = start_in_background(service)
            try:
                threads = [
                    threading.Thread(target=drive, args=(handle.port,),
                                     name="p3-chaos-driver-%d" % index,
                                     daemon=True)
                    for index in range(driver_threads)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120.0)
                stuck = [t.name for t in threads if t.is_alive()]
                if stuck:
                    report.unhandled = "driver threads stuck: %s" % stuck
            finally:
                chaos_plan.hang_release.set()
                handle.stop()
    except Exception as exc:  # noqa: BLE001 — the harness's raison d'être
        report.unhandled = "%s: %s" % (type(exc).__name__, exc)
    finally:
        chaos_plan.hang_release.set()
        registry.close()
    report.faults_observed = dict(chaos_plan.observed)
    report.final_epoch = tenant.system.epoch
    report.seconds = time.perf_counter() - started
    return report
