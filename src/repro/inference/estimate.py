"""The common ``Estimate`` protocol every probability answer satisfies.

The inference layer produces three shapes of answer — exact floats,
Monte-Carlo estimates (:class:`~repro.inference.montecarlo.MonteCarloEstimate`),
and anytime bounds (:class:`~repro.inference.bounded.BoundedResult`) — and
callers used to switch on the concrete type to get a value and an error
bar out.  This module defines the structural protocol they now share:

``value``
    The point estimate (the midpoint for interval answers).  May exceed
    1 for unbiased scaled estimators (Karp–Luby).
``stderr``
    Standard error of ``value``; ``None`` for exact answers.
``exact``
    True when ``value`` is deterministic in (polynomial, probabilities).
``interval()``
    A ``(low, high)`` confidence/bound interval containing the answer.

:class:`Estimate` is a runtime-checkable structural check —
``isinstance(x, Estimate)`` answers True for *any* object exposing the
four members, so third-party estimators conform without inheriting.
:class:`ExactEstimate` wraps a bare float for code paths that want the
uniform interface end to end.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

__all__ = ["Estimate", "ExactEstimate"]

_MEMBERS = ("value", "stderr", "exact", "interval")


class Estimate(abc.ABC):
    """Structural protocol: value + stderr + exact + interval()."""

    @classmethod
    def __subclasshook__(cls, subclass: type) -> bool:
        if cls is not Estimate:
            return NotImplemented
        return all(
            any(member in parent.__dict__ for parent in subclass.__mro__)
            for member in _MEMBERS)


class ExactEstimate:
    """A deterministic probability dressed in the Estimate protocol."""

    __slots__ = ("value",)

    exact = True
    stderr: Optional[float] = None

    def __init__(self, value: float) -> None:
        self.value = value

    def interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Degenerate interval: an exact value brackets itself."""
        return (self.value, self.value)

    @property
    def value_clamped(self) -> float:
        return min(1.0, max(0.0, self.value))

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return "ExactEstimate(%.12f)" % self.value
