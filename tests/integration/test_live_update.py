"""Live-update safety: incremental ``add_facts`` through the facade.

The staleness property these tests pin down: after ``P3.add_facts``,
every query kind must return exactly what a from-scratch evaluation of
the extended program returns, and warm executor caches must not leak
pre-update answers (epoch invalidation, visible in ``stats()``).
"""

import pytest

from repro import P3, P3Config
from repro.core.errors import UnknownTupleError
from repro.datalog.ast import Fact
from repro.datalog.engine import EvaluationResult
from repro.exec import QuerySpec

BASE = """
    t1 0.5: edge(1,2).
    t2 0.9: edge(2,3).
    r1 1.0: path(X,Y) :- edge(X,Y).
    r2 0.5: path(X,Z) :- edge(X,Y), path(Y,Z).
"""

NEW_FACTS = "t3 0.25: edge(3,4)."

EXTENDED = BASE + "\n" + NEW_FACTS


def _fresh_extended():
    scratch = P3.from_source(EXTENDED, P3Config(seed=11))
    scratch.evaluate()
    return scratch


class TestStalenessProperty:
    def test_every_query_kind_matches_from_scratch(self):
        live = P3.from_source(BASE, P3Config(seed=11))
        live.evaluate()
        executor = live.executor()
        # Warm the caches with pre-update answers.
        executor.probability("path(1,3)")
        executor.probability("path(2,3)")
        assert not live.holds("path(1,4)")

        delta = live.add_facts(NEW_FACTS)
        assert isinstance(delta, EvaluationResult)
        assert delta.derived_count > 0

        scratch = _fresh_extended()
        specs = [
            QuerySpec.probability("path(1,4)"),
            QuerySpec.probability("path(1,3)"),
            QuerySpec.explain("path(1,4)"),
            QuerySpec.derive("path(1,4)", epsilon=0.05, method="naive"),
            QuerySpec.influence("path(1,4)"),
            QuerySpec.modify("path(1,4)", target=0.5),
        ]
        batch = executor.run(specs)
        assert batch.ok
        reference = scratch.executor().run(specs)
        assert reference.ok
        for live_outcome, ref_outcome in zip(batch, reference):
            live_value = live_outcome.value
            ref_value = ref_outcome.value
            if isinstance(live_value, float):
                assert live_value == pytest.approx(ref_value)
            else:
                assert live_value.to_dict() == ref_value.to_dict()

        # The warm pre-update entries were stale and must be counted.
        assert executor.stats()["invalidations"] > 0

    def test_facade_shortcuts_match_from_scratch(self):
        live = P3.from_source(BASE, P3Config(seed=11))
        live.evaluate()
        live.probability_of("path", 1, 3)
        live.add_facts(NEW_FACTS)
        scratch = _fresh_extended()
        assert live.probability_of("path", 1, 4) == pytest.approx(
            scratch.probability_of("path", 1, 4))
        assert live.polynomial_of("path", 1, 4) == \
            scratch.polynomial_of("path", 1, 4)
        assert live.explain("path", 1, 4).to_dict() == \
            scratch.explain("path", 1, 4).to_dict()

    def test_repeated_updates_compose(self):
        live = P3.from_source(BASE, P3Config(seed=11))
        live.evaluate()
        live.add_facts("t3 0.25: edge(3,4).")
        live.add_facts("t4 0.75: edge(4,5).")
        scratch = P3.from_source(
            EXTENDED + "\nt4 0.75: edge(4,5).", P3Config(seed=11))
        scratch.evaluate()
        assert live.probability_of("path", 1, 5) == pytest.approx(
            scratch.probability_of("path", 1, 5))
        assert live.epoch == 2


class TestEpochs:
    def test_epoch_starts_at_zero_and_bumps_per_update(self):
        live = P3.from_source(BASE)
        live.evaluate()
        assert live.epoch == 0
        live.add_facts(NEW_FACTS)
        assert live.epoch == 1

    def test_duplicate_fact_does_not_bump_epoch(self):
        live = P3.from_source(BASE)
        live.evaluate()
        live.add_facts(NEW_FACTS)
        epoch = live.epoch
        # Same tuple again: no new insertions, caches stay valid.
        live.add_facts("t9 0.99: edge(3,4).")
        assert live.epoch == epoch

    def test_duplicate_fact_keeps_original_probability(self):
        live = P3.from_source(BASE)
        live.evaluate()
        live.add_facts(NEW_FACTS)
        live.add_facts("t9 0.99: edge(3,4).")
        assert live.probability_of("edge", 3, 4) == 0.25

    def test_stale_cache_entry_counts_as_miss(self):
        live = P3.from_source(BASE)
        live.evaluate()
        executor = live.executor()
        executor.probability("path(1,3)")
        executor.probability("path(1,3)")
        hits_warm = executor.result_cache.stats()["hits"]
        assert hits_warm == 1
        live.add_facts(NEW_FACTS)
        executor.probability("path(1,3)")
        stats = executor.result_cache.stats()
        assert stats["invalidations"] >= 1
        assert stats["hits"] == hits_warm


class TestAddFactsInputs:
    def test_accepts_fact_objects(self):
        live = P3.from_source(BASE)
        live.evaluate()
        program = P3.from_source(NEW_FACTS).program
        fact = program.facts[0]
        assert isinstance(fact, Fact)
        live.add_facts([fact])
        assert live.holds("path", 1, 4)

    def test_accepts_clause_strings(self):
        live = P3.from_source(BASE)
        live.evaluate()
        live.add_facts(["t3 0.25: edge(3,4).", "edge(4,5)."])
        assert live.holds("path", 1, 5)
        assert live.probability_of("edge", 4, 5) == 1.0

    def test_accepts_program_source_string(self):
        live = P3.from_source(BASE)
        live.evaluate()
        live.add_facts("t3 0.25: edge(3,4).  t4 0.75: edge(4,5).")
        assert live.holds("path", 1, 5)

    def test_rejects_rules(self):
        live = P3.from_source(BASE)
        live.evaluate()
        with pytest.raises(ValueError):
            live.add_facts("r9 1.0: loop(X,Y) :- path(Y,X).")

    def test_rejects_non_ground_facts(self):
        live = P3.from_source(BASE)
        live.evaluate()
        with pytest.raises(ValueError):
            live.add_facts("edge(X,1).")

    def test_add_fact_singular(self):
        live = P3.from_source(BASE)
        live.evaluate()
        live.add_fact(NEW_FACTS)
        assert live.holds("path", 1, 4)


class TestFallbackPaths:
    def test_unevaluated_system_defers_to_evaluate(self):
        live = P3.from_source(BASE)
        assert live.add_facts(NEW_FACTS) is None
        assert live.epoch == 1
        live.evaluate()
        assert live.holds("path", 1, 4)
        scratch = _fresh_extended()
        assert live.probability_of("path", 1, 4) == pytest.approx(
            scratch.probability_of("path", 1, 4))

    def test_negation_program_full_reevaluation(self):
        source = """
            t1 0.8: person(1).
            person(2).
            blocked(2).
            r1 1.0: free(X) :- person(X), not blocked(X).
        """
        live = P3.from_source(source)
        live.evaluate()
        assert live.holds("free", 1)
        assert not live.holds("free", 2)
        delta = live.add_facts("t9 0.6: person(3).")
        assert isinstance(delta, EvaluationResult)
        assert live.holds("free", 3)
        assert live.probability_of("free", 3) == pytest.approx(0.6)
        assert live.epoch == 1

    def test_new_tuple_unknown_before_update(self):
        live = P3.from_source(BASE)
        live.evaluate()
        with pytest.raises(UnknownTupleError):
            live.polynomial_of("path", 1, 4)
        live.add_facts(NEW_FACTS)
        assert live.polynomial_of("path", 1, 4) is not None


class TestAnswerQueriesAfterUpdate:
    def test_registered_queries_reanswered(self):
        source = BASE + "\nquery(path(1,4))."
        live = P3.from_source(source)
        live.evaluate()
        before = live.answer_queries()
        assert before.get("path(1,4)", 0.0) == 0.0
        live.add_facts(NEW_FACTS)
        after = live.answer_queries()
        scratch = P3.from_source(EXTENDED + "\nquery(path(1,4)).")
        scratch.evaluate()
        assert after["path(1,4)"] == pytest.approx(
            scratch.answer_queries()["path(1,4)"])
