"""Figure 9 — program running time with and without provenance maintenance.

The paper evaluates the Trust program on BFS samples of 50-500 nodes and
shows (a) super-linear growth in sample size and (b) a small provenance-
maintenance overhead (≈≤10% of total time).

Default sizes are scaled down for the pure-Python engine (the shape is
identical); set ``P3_BENCH_SCALE=paper`` for the original 50..500 grid.
"""

import time

from repro.datalog.engine import Engine

from reporting import paper_scale, record_table
from workloads import bfs_sample


def _sizes():
    if paper_scale():
        return [50, 100, 150, 200, 250, 300, 350, 400, 450, 500]
    return [20, 40, 60, 80, 100]


def _time_evaluation(program, capture):
    start = time.perf_counter()
    Engine(program, capture_tables=capture).run()
    return time.perf_counter() - start


def test_fig9_maintenance_overhead(benchmark):
    rows = []
    overheads = []
    for size in _sizes():
        sample = bfs_sample(size, seed=1)
        program = sample.to_program()
        without = _time_evaluation(program, capture=False)
        with_prov = _time_evaluation(sample.to_program(), capture=True)
        overhead = (with_prov - without) / with_prov if with_prov else 0.0
        overheads.append(overhead)
        rows.append([size, sample.edge_count, without, with_prov,
                     "%.0f%%" % (100 * overhead)])

    record_table(
        "fig9_maintenance",
        "Figure 9: running time with and without provenance maintenance",
        ["sample size", "edges", "no-prov time (s)", "with-prov time (s)",
         "overhead"],
        rows,
    )

    # Shape assertions: growth is super-linear; overhead stays modest
    # (paper: <10% on ExSPAN; our relational capture path costs a little
    # more but must stay well under half the runtime on larger samples).
    first, last = rows[0], rows[-1]
    size_ratio = last[0] / first[0]
    time_ratio = last[3] / max(first[3], 1e-9)
    assert time_ratio > size_ratio, "expected super-linear growth"
    for row in rows:
        assert row[3] >= row[2] * 0.9  # provenance never *speeds up* runs
    assert sum(overheads[1:]) / len(overheads[1:]) < 0.5

    # pytest-benchmark timing on a mid-sized sample (with provenance).
    middle = bfs_sample(_sizes()[len(_sizes()) // 2], seed=1)
    benchmark.pedantic(
        lambda: Engine(middle.to_program(), capture_tables=True).run(),
        rounds=2, iterations=1)
