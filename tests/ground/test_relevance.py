"""Equivalence tests for the query-directed grounder.

The contract: ``ground_goal`` returns a provenance subgraph already
normalized to the *original* program (no magic/adorned artifacts), and
every answer's polynomial is byte-identical to what full evaluation
produces for the same key.  The adversarial shapes here — constants in
rule bodies, several adornments of one relation in a single batch,
mutual recursion — are exactly the ones that bend magic-set label
bookkeeping out of shape.
"""

import pytest

from repro.data import ACQUAINTANCE, paper_fragment
from repro.datalog.engine import Engine, EvaluationError
from repro.datalog.parser import parse_program
from repro.datalog.terms import Atom, Constant, Variable, atom as make_atom
from repro.ground import FactStore, ground_goal
from repro.provenance import GraphBuilder, extract_polynomial, register_program

TC = """
edge(1,2). edge(2,3). edge(3,4). edge(4,5). edge(10,11).
r1 1.0: path(X,Y) :- edge(X,Y).
r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
"""


def full_graph(source_or_program):
    program = (parse_program(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    builder = GraphBuilder()
    register_program(builder.graph, program)
    Engine(program, recorder=builder, capture_tables=False).run()
    return builder.graph


def assert_matches_full(source_or_program, pattern, expected_answers=None):
    """Ground ``pattern`` and compare every answer against full evaluation."""
    program = (parse_program(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    goal = ground_goal(program, pattern)
    full = full_graph(program)
    if expected_answers is not None:
        assert sorted(goal.answers) == sorted(expected_answers)
    assert goal.answers, "goal derived nothing"
    for key in goal.answers:
        assert key in full, key
        assert extract_polynomial(goal.graph, key) == \
            extract_polynomial(full, key), key
    return goal, full


class TestEquivalence:
    def test_ground_query_transitive_closure(self):
        goal, _ = assert_matches_full(
            TC, make_atom("path", 1, 4), ["path(1,4)"])
        # Relevance: the disconnected 10-11 component must not appear.
        assert not any("10" in key for key in goal.graph.tuple_keys())

    def test_pattern_query_matches_full_answers(self):
        pattern = Atom("path", (Constant(1), Variable("X")))
        expected = ["path(1,%d)" % n for n in (2, 3, 4, 5)]
        assert_matches_full(TC, pattern, expected)

    def test_trust_fragment(self):
        assert_matches_full(paper_fragment().to_program(),
                            make_atom("mutualTrustPath", 1, 6),
                            ["mutualTrustPath(1,6)"])

    def test_acquaintance_idb_with_base_facts(self):
        # know/2 is IDB *and* has base facts: exercises the bridge-rule
        # collapse and base-tuple re-registration.
        assert_matches_full(ACQUAINTANCE,
                            make_atom("know", "Ben", "Elena"),
                            ['know("Ben","Elena")'])

    def test_no_magic_artifacts(self):
        goal, _ = assert_matches_full(
            paper_fragment().to_program(),
            make_atom("mutualTrustPath", 1, 6))
        for key in goal.graph.tuple_keys():
            assert "@" not in key and not key.startswith("m_")
        for execution in goal.graph.executions():
            assert "@" not in execution.rule_label
            assert not execution.rule_label.startswith("mg")

    def test_subgraph_of_full(self):
        goal, full = assert_matches_full(
            paper_fragment().to_program(),
            make_atom("mutualTrustPath", 1, 6))
        assert goal.graph.tuple_keys() <= full.tuple_keys()
        assert goal.graph.executions() <= full.executions()


class TestAdversarialShapes:
    def test_constants_in_rule_bodies(self):
        # A constant in the body atom binds a column before any variable
        # does; the compiled plan must treat it as a bound index column.
        source = """
        e(1,2). e(2,3). e(1,3). e(3,4).
        r1 0.9: hub(X) :- e(1,X).
        r2 0.8: hop(X,Y) :- hub(X), e(X,Y).
        r3 0.7: report(Y) :- hop(2,Y).
        """
        assert_matches_full(source, make_atom("report", 3), ["report(3)"])

    def test_constant_in_head(self):
        source = """
        e(1,2). e(2,3).
        r1 0.9: tagged(X,7) :- e(X,Y).
        """
        assert_matches_full(source, make_atom("tagged", 1, 7),
                            ["tagged(1,7)"])

    def test_repeated_variable_in_body_atom(self):
        # self(X) :- e(X,X): both columns bind the same slot; the second
        # occurrence is a post-row equality check, not an index lookup.
        source = """
        e(1,1). e(1,2). e(3,3).
        r1 0.9: self(X) :- e(X,X).
        """
        assert_matches_full(source, Atom("self", (Variable("X"),)),
                            ["self(1)", "self(3)"])

    def test_multiple_adornments_single_batch(self):
        # One grounding pass whose rules demand p under both bf and bb:
        # the label map must keep every adorned copy pointing at the
        # original rule label.
        source = """
        e(1,2). e(2,3). e(3,1). e(2,4).
        r1 0.9: p(X,Y) :- e(X,Y).
        r2 0.8: p(X,Z) :- e(X,Y), p(Y,Z).
        r3 0.7: q(X) :- p(1,X), p(X,4).
        """
        # The e-cycle 1->2->3->1 plus e(2,4) makes q derivable for all of
        # 1, 2, 3 (each reaches 4 and is reachable from 1).
        assert_matches_full(source, Atom("q", (Variable("X"),)),
                            ["q(1)", "q(2)", "q(3)"])

    def test_mutual_recursion(self):
        source = """
        e(1,2). e(2,3). e(3,4).
        r1 0.9: even(X,Y) :- e(X,Y), e(Y,Y2), odd(Y2,Y2).
        r2 0.8: even(X,X) :- e(X,Y).
        r3 0.7: odd(X,X) :- e(X,Y).
        r4 0.6: odd(X,Z) :- even(X,Y), e(Y,Z).
        """
        pattern = Atom("odd", (Constant(1), Variable("Z")))
        assert_matches_full(source, pattern)

    def test_comparison_guards(self):
        source = """
        t1 0.9: trust(1,2). t2 0.8: trust(2,3). t3 0.7: trust(3,1).
        r1 1.0: tp(X,Y) :- trust(X,Y).
        r2 1.0: tp(X,Z) :- trust(X,Y), tp(Y,Z), X!=Z.
        """
        assert_matches_full(source, make_atom("tp", 1, 3), ["tp(1,3)"])


class TestBudgets:
    def test_max_rounds_raises_evaluation_error(self):
        program = parse_program(TC)
        with pytest.raises(EvaluationError, match="max_rounds"):
            ground_goal(program, make_atom("path", 1, 5), max_rounds=1)

    def test_max_tuples_raises_evaluation_error(self):
        program = parse_program(TC)
        with pytest.raises(EvaluationError, match="max_tuples"):
            ground_goal(program, make_atom("path", 1, 5), max_tuples=6)

    def test_generous_budgets_pass(self):
        program = parse_program(TC)
        goal = ground_goal(program, make_atom("path", 1, 5),
                           max_rounds=100, max_tuples=10_000)
        assert goal.answers == ["path(1,5)"]


class TestSharedBaseStore:
    def test_two_goals_share_one_base_store(self):
        program = parse_program(TC)
        base = FactStore.from_program(program)
        count_before = base.count()
        goal_a = ground_goal(program, make_atom("path", 1, 3),
                             base_store=base)
        goal_b = ground_goal(program, make_atom("path", 2, 5),
                             base_store=base)
        # Grounding never mutates the shared base.
        assert base.count() == count_before
        assert goal_a.answers == ["path(1,3)"]
        assert goal_b.answers == ["path(2,5)"]

    def test_stats_populated(self):
        goal = ground_goal(parse_program(TC), make_atom("path", 1, 4))
        assert goal.stats["rounds"] >= 1
        assert goal.stats["firings"] >= 1
        assert goal.stats["derived_rows"] >= 1
        assert goal.stats["total_rows"] >= goal.stats["derived_rows"]
