"""Semi-naive bottom-up evaluation with provenance capture.

The engine evaluates a compiled ProbLog program to fixpoint.  Unlike a plain
Datalog engine, which only cares about *which* tuples are derivable, the
provenance requirements of Section 3 demand that **every distinct rule
firing** be enumerated — a firing that re-derives an existing tuple is a new
derivation and must appear in the provenance graph.

Semi-naive evaluation gives that for free: each firing contains at least one
body tuple that is new in some round, and we enumerate the firing exactly
once, in the round where its newest body tuple appeared (disambiguated by
the first delta position, the classical trick).  Firings whose body is
entirely extensional surface in the initial naive round.

Provenance is captured two ways simultaneously (both per Section 3.2):

- a :class:`ProvenanceRecorder` callback receives facts and firings as they
  happen (the live path used to build the provenance graph), and
- ``prov_``/``rule_`` capture tuples are inserted into the database itself
  (the relational-tables path), unless disabled for baseline timing runs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple

from .. import telemetry
from .ast import Fact, Program, Rule
from .database import Database
from .rewrite import CompiledRule, compile_program
from .terms import Atom, Substitution


class EvaluationError(RuntimeError):
    """Raised when evaluation exceeds configured safety limits."""


class ProvenanceRecorder(Protocol):
    """Callback protocol for live provenance capture."""

    def record_fact(self, fact: Fact) -> None:
        """Called once per base fact seeded into the database."""

    def record_firing(self, rule: Rule, head: Atom,
                      body: Tuple[Atom, ...]) -> None:
        """Called once per distinct rule firing (head and ground body)."""


class EvaluationResult:
    """Outcome of running the engine: final database plus statistics."""

    def __init__(self, database: Database, rounds: int, firing_count: int,
                 elapsed_seconds: float, derived_count: int) -> None:
        self.database = database
        self.rounds = rounds
        self.firing_count = firing_count
        self.elapsed_seconds = elapsed_seconds
        self.derived_count = derived_count

    def __repr__(self) -> str:
        return (
            "EvaluationResult(rounds=%d, firings=%d, derived=%d, %.3fs)"
            % (self.rounds, self.firing_count, self.derived_count,
               self.elapsed_seconds)
        )


class Engine:
    """Bottom-up semi-naive evaluator for a ProbLog program.

    Parameters
    ----------
    program:
        The parsed program to evaluate.
    recorder:
        Optional live provenance recorder (e.g.
        :class:`repro.provenance.graph.GraphBuilder`).
    capture_tables:
        When True (default), insert ``prov_``/``rule_`` capture tuples into
        the database per the Section 3.2 rewrite.  Disable to measure the
        "without provenance" baseline of Figure 9.
    max_rounds / max_tuples:
        Safety limits; exceeding either raises :class:`EvaluationError`.
    """

    def __init__(self, program: Program,
                 recorder: Optional[ProvenanceRecorder] = None,
                 capture_tables: bool = True,
                 max_rounds: Optional[int] = None,
                 max_tuples: Optional[int] = None) -> None:
        self.program = program
        self.recorder = recorder
        self.capture_tables = capture_tables
        self.max_rounds = max_rounds
        self.max_tuples = max_tuples
        compiled: List[CompiledRule] = compile_program(program)
        # Stratified evaluation: rules run lowest stratum first so negated
        # relations are complete before any rule negating them fires.  For
        # negation-free programs this is a single stratum.
        if any(rule.negations for rule in program.rules):
            from .stratification import rule_strata, validate_program
            validate_program(program)
            by_rule = {id(c.rule): c for c in compiled}
            self._strata: List[List[CompiledRule]] = [
                [by_rule[id(rule)] for rule in group]
                for group in rule_strata(program)
            ]
        else:
            self._strata = [compiled] if compiled else [[]]

    def run(self) -> EvaluationResult:
        """Evaluate the program to fixpoint and return the result.

        With telemetry enabled the whole fixpoint is one
        ``evaluate.fixpoint`` span carrying round/firing/derived counts.
        """
        rt = telemetry.runtime()
        if not rt.enabled:
            return self._run()
        with rt.tracer.span("evaluate.fixpoint",
                            rules=len(self.program.rules),
                            strata=len(self._strata)) as span:
            result = self._run()
            span.set_attributes(rounds=result.rounds,
                                firings=result.firing_count,
                                derived=result.derived_count)
        return result

    def _run(self) -> EvaluationResult:
        start = time.perf_counter()
        database = Database()
        if self.capture_tables:
            # Capture tables are append-only bookkeeping — scanned when the
            # graph is rebuilt, never joined — so skip index maintenance.
            from .rewrite import PROV_RELATION, RULE_RELATION
            database.mark_unindexed(PROV_RELATION)
            database.mark_unindexed(RULE_RELATION)
        generation: Dict[Atom, int] = {}
        seen_firings: Set[Tuple[str, Atom, Tuple[Atom, ...]]] = set()
        firing_count = 0

        # Seed base facts (generation 0).
        for fact in self.program.facts:
            if database.add(fact.atom):
                generation[fact.atom] = 0
                if self.recorder is not None:
                    self.recorder.record_fact(fact)

        base_count = database.count()
        rounds = 0
        current_round = 0
        for stratum in self._strata:
            # Every tuple present when the stratum starts (base facts plus
            # lower-stratum output) acts as its generation-0 input.
            stratum_base = current_round
            naive_pass = True
            while True:
                current_round += 1
                rounds = current_round
                if (self.max_rounds is not None
                        and current_round > self.max_rounds):
                    raise EvaluationError(
                        "Exceeded max_rounds=%d" % self.max_rounds
                    )
                new_atoms: List[Atom] = []
                for compiled in stratum:
                    for head, body in self._fire_rule(
                            compiled, database, generation, current_round,
                            stratum_base, naive_pass):
                        key = (compiled.label, head, body)
                        if key in seen_firings:
                            continue
                        seen_firings.add(key)
                        firing_count += 1
                        self._capture(compiled, head, body, database)
                        if database.add(head):
                            generation[head] = current_round
                            new_atoms.append(head)
                            if (self.max_tuples is not None
                                    and database.count() > self.max_tuples):
                                raise EvaluationError(
                                    "Exceeded max_tuples=%d" % self.max_tuples
                                )
                naive_pass = False
                if not new_atoms:
                    break

        elapsed = time.perf_counter() - start
        derived = database.count() - base_count
        if self.capture_tables:
            # Capture tuples are bookkeeping, not derived data.
            from .rewrite import PROV_RELATION, RULE_RELATION
            derived -= database.count(PROV_RELATION)
            derived -= database.count(RULE_RELATION)
        return EvaluationResult(database, rounds, firing_count, elapsed, derived)

    # -- internals ---------------------------------------------------------

    def _capture(self, compiled: CompiledRule, head: Atom,
                 body: Tuple[Atom, ...], database: Database) -> None:
        if self.recorder is not None:
            self.recorder.record_firing(compiled.rule, head, body)
        if self.capture_tables:
            for capture in compiled.capture_atoms(head, body):
                database.add(capture)

    def _fire_rule(self, compiled: CompiledRule, database: Database,
                   generation: Dict[Atom, int], current_round: int,
                   stratum_base: int, naive_pass: bool):
        """Yield (head, body_atoms) for each firing new to this round.

        The stratum's first round is a naive pass over everything derived
        so far (generation ≤ ``stratum_base``).  Later rounds run one
        semi-naive pass per body position ``i``: positions before ``i`` see
        strictly-older tuples, position ``i`` sees only the latest delta,
        positions after ``i`` see everything derived so far.
        """
        body_len = len(compiled.body)
        if naive_pass:
            yield from self._join(compiled, database, generation,
                                  [(0, stratum_base)] * body_len)
            return
        delta = current_round - 1
        for pivot in range(body_len):
            spec: List[Tuple[int, int]] = []
            for position in range(body_len):
                if position < pivot:
                    spec.append((0, delta - 1))
                elif position == pivot:
                    spec.append((delta, delta))
                else:
                    spec.append((0, delta))
            yield from self._join(compiled, database, generation, spec)

    def _join(self, compiled: CompiledRule, database: Database,
              generation: Dict[Atom, int],
              spec: Sequence[Tuple[int, int]]):
        """Nested-loop indexed join over the body with generation bounds.

        ``spec[i]`` is the inclusive (min_generation, max_generation) window
        for body position ``i``.
        """
        rule = compiled.rule
        schedule = compiled.guard_schedule
        negations = compiled.negation_schedule

        def negations_hold(position: int, subst: Substitution) -> bool:
            for negated in negations[position]:
                if negated.substitute(subst) in database:
                    return False
            return True

        def descend(position: int, subst: Substitution,
                    matched: Tuple[Atom, ...]):
            if position == len(rule.body):
                head = rule.head.substitute(subst)
                yield head, matched
                return
            pattern = rule.body[position]
            relation = database.relation(pattern.relation)
            lo, hi = spec[position]
            for atom, extended in relation.match_atoms(pattern, subst):
                gen = generation.get(atom, 0)
                if gen < lo or gen > hi:
                    continue
                if not all(guard.evaluate(extended)
                           for guard in schedule[position]):
                    continue
                if not negations_hold(position, extended):
                    continue
                yield from descend(position + 1, extended, matched + (atom,))

        yield from descend(0, {}, ())


def evaluate(program: Program,
             recorder: Optional[ProvenanceRecorder] = None,
             capture_tables: bool = True,
             max_rounds: Optional[int] = None,
             max_tuples: Optional[int] = None) -> EvaluationResult:
    """Convenience wrapper: build an :class:`Engine` and run it."""
    engine = Engine(program, recorder=recorder, capture_tables=capture_tables,
                    max_rounds=max_rounds, max_tuples=max_tuples)
    return engine.run()
