"""Read-once factorization of provenance polynomials.

The paper's related work (Section 7.2) notes that Kanagal et al.'s
sensitivity analysis [13] "works on read-once lineages from conjunctive
queries without self-joins. However, read-once is not a universal property
of the provenance polynomials extracted from PLP programs."  This module
makes that precise and exploits it when it *does* hold:

- :func:`decompose` attempts to factor a monotone DNF into a **read-once
  tree** — an AND/OR tree in which every literal appears exactly once —
  using the classical co-occurrence-graph decomposition (Golumbic, Mintz &
  Rotics):

  * OR-decomposition: monomials split into literal-disjoint groups;
  * AND-decomposition: the literal set splits into connected components of
    the *complement* of the co-occurrence graph, and the DNF is the
    cartesian product of its projections onto the components (verified
    explicitly, which keeps the procedure sound on non-normal inputs);
  * otherwise the polynomial is not read-once and ``None`` is returned.

- On a read-once tree, exact probability and exact influence are
  *linear-time* (:func:`read_once_probability`,
  :func:`read_once_influence`) instead of #P-hard, which is exactly why
  [13] restricts itself to read-once lineage.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from .polynomial import Literal, Monomial, Polynomial, ProbabilityMap


class NotReadOnceError(ValueError):
    """Raised by the strict API when a polynomial has no read-once form."""


class ReadOnceNode:
    """A node of a read-once factorization tree."""

    KIND_LEAF = "leaf"
    KIND_AND = "and"
    KIND_OR = "or"

    __slots__ = ("kind", "literal", "children")

    def __init__(self, kind: str, literal: Optional[Literal] = None,
                 children: Sequence["ReadOnceNode"] = ()) -> None:
        self.kind = kind
        self.literal = literal
        self.children = tuple(children)
        if kind == self.KIND_LEAF:
            if literal is None or self.children:
                raise ValueError("Leaf nodes carry exactly one literal")
        else:
            if literal is not None or len(self.children) < 2:
                raise ValueError(
                    "Internal nodes need >= 2 children and no literal")

    # -- structure -----------------------------------------------------------

    def literals(self) -> FrozenSet[Literal]:
        if self.kind == self.KIND_LEAF:
            assert self.literal is not None
            return frozenset({self.literal})
        result: Set[Literal] = set()
        for child in self.children:
            result.update(child.literals())
        return frozenset(result)

    def to_polynomial(self) -> Polynomial:
        """Expand the tree back into DNF (testing / verification helper)."""
        if self.kind == self.KIND_LEAF:
            assert self.literal is not None
            return Polynomial.from_literal(self.literal)
        if self.kind == self.KIND_AND:
            result = Polynomial.one()
            for child in self.children:
                result = result * child.to_polynomial()
            return result
        result = Polynomial.zero()
        for child in self.children:
            result = result + child.to_polynomial()
        return result

    def probability(self, probabilities: ProbabilityMap) -> float:
        """Exact P[·] in one linear pass (independence by construction)."""
        if self.kind == self.KIND_LEAF:
            assert self.literal is not None
            return probabilities[self.literal]
        if self.kind == self.KIND_AND:
            result = 1.0
            for child in self.children:
                result *= child.probability(probabilities)
            return result
        miss = 1.0
        for child in self.children:
            miss *= 1.0 - child.probability(probabilities)
        return 1.0 - miss

    def influence(self, probabilities: ProbabilityMap,
                  literal: Literal) -> float:
        """Exact Inf_literal in one pass: ∂P/∂p(literal) down the tree.

        The derivative of an AND node is the product of sibling
        probabilities times the child derivative; of an OR node, the
        product of sibling miss-probabilities times the child derivative.
        """
        if self.kind == self.KIND_LEAF:
            return 1.0 if self.literal == literal else 0.0
        values = [child.probability(probabilities) for child in self.children]
        for index, child in enumerate(self.children):
            if literal not in child.literals():
                continue
            partial = child.influence(probabilities, literal)
            if self.kind == self.KIND_AND:
                for sibling, value in enumerate(values):
                    if sibling != index:
                        partial *= value
            else:
                for sibling, value in enumerate(values):
                    if sibling != index:
                        partial *= 1.0 - value
            return partial
        return 0.0

    def __str__(self) -> str:
        if self.kind == self.KIND_LEAF:
            return str(self.literal)
        joiner = "·" if self.kind == self.KIND_AND else " + "
        return "(%s)" % joiner.join(str(child) for child in self.children)

    def __repr__(self) -> str:
        return "ReadOnceNode(%s, %s)" % (self.kind, self)


def _disjoint_monomial_groups(
        monomials: Sequence[Monomial]) -> List[List[Monomial]]:
    """Union-find partition of monomials into literal-disjoint groups."""
    parent = list(range(len(monomials)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: Dict[Literal, int] = {}
    for index, monomial in enumerate(monomials):
        for literal in monomial.literals:
            if literal in owner:
                ri, rj = find(owner[literal]), find(index)
                if ri != rj:
                    parent[rj] = ri
            else:
                owner[literal] = index
    groups: Dict[int, List[Monomial]] = {}
    for index, monomial in enumerate(monomials):
        groups.setdefault(find(index), []).append(monomial)
    return list(groups.values())


def _complement_components(
        monomials: Sequence[Monomial],
        literals: Sequence[Literal]) -> List[Set[Literal]]:
    """Connected components of the complement of the co-occurrence graph."""
    cooccur: Dict[Literal, Set[Literal]] = {lit: set() for lit in literals}
    for monomial in monomials:
        members = list(monomial.literals)
        for i, left in enumerate(members):
            for right in members[i + 1:]:
                cooccur[left].add(right)
                cooccur[right].add(left)
    literal_set = set(literals)
    unvisited = set(literals)
    components: List[Set[Literal]] = []
    while unvisited:
        start = unvisited.pop()
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            # Complement-graph neighbours: literals NOT co-occurring.
            for other in list(unvisited):
                if other not in cooccur[node] and other != node:
                    unvisited.discard(other)
                    component.add(other)
                    frontier.append(other)
        components.append(component)
        literal_set -= component
    return components


def decompose(polynomial: Polynomial) -> Optional[ReadOnceNode]:
    """Factor a monotone DNF into a read-once tree, or return ``None``.

    The input must be non-constant (use :meth:`Polynomial.is_zero` /
    :meth:`is_one` first); constants raise ``ValueError``.
    """
    if polynomial.is_zero or polynomial.is_one:
        raise ValueError("Constant polynomials have no read-once tree")
    monomials = list(polynomial.monomials)
    literals = sorted(polynomial.literals())

    if len(literals) == 1 and len(monomials) == 1:
        return ReadOnceNode(ReadOnceNode.KIND_LEAF, literal=literals[0])

    # OR-decomposition: literal-disjoint monomial groups.
    groups = _disjoint_monomial_groups(monomials)
    if len(groups) > 1:
        children = []
        for group in groups:
            child = decompose(Polynomial(group))
            if child is None:
                return None
            children.append(child)
        children.sort(key=str)
        return ReadOnceNode(ReadOnceNode.KIND_OR, children=children)

    # AND-decomposition: components of the complement co-occurrence graph.
    components = _complement_components(monomials, literals)
    if len(components) > 1:
        projections: List[Polynomial] = []
        for component in components:
            projected = Polynomial(
                Monomial(monomial.literals & component)
                for monomial in monomials)
            projections.append(projected)
        # Verify the cartesian-product structure explicitly.
        product = Polynomial.one()
        for projected in projections:
            product = product * projected
        if product != polynomial:
            return None
        children = []
        for projected in projections:
            child = decompose(projected)
            if child is None:
                return None
            children.append(child)
        children.sort(key=str)
        return ReadOnceNode(ReadOnceNode.KIND_AND, children=children)

    # Connected co-occurrence graph AND connected complement: not read-once
    # (a P4 or similar obstruction is present).
    return None


def is_read_once(polynomial: Polynomial) -> bool:
    """Does the polynomial admit a read-once factorization?"""
    if polynomial.is_zero or polynomial.is_one:
        return True
    return decompose(polynomial) is not None


def read_once_probability(polynomial: Polynomial,
                          probabilities: ProbabilityMap) -> float:
    """Exact linear-time P[λ] for read-once polynomials.

    Raises :class:`NotReadOnceError` when no factorization exists.
    """
    if polynomial.is_zero:
        return 0.0
    if polynomial.is_one:
        return 1.0
    tree = decompose(polynomial)
    if tree is None:
        raise NotReadOnceError(
            "Polynomial with %d monomials is not read-once" % len(polynomial))
    return tree.probability(probabilities)


def read_once_influence(polynomial: Polynomial,
                        probabilities: ProbabilityMap,
                        literal: Literal) -> float:
    """Exact linear-time influence (Definition 4.1) on read-once input."""
    if polynomial.is_zero or polynomial.is_one:
        return 0.0
    tree = decompose(polynomial)
    if tree is None:
        raise NotReadOnceError(
            "Polynomial with %d monomials is not read-once" % len(polynomial))
    return tree.influence(probabilities, literal)
