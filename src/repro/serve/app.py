"""``repro.serve`` — an asyncio HTTP/JSON front-end over the executor.

The service is deliberately framework-free: a small HTTP/1.1 server on
``asyncio.start_server`` (stdlib only), because the repository bakes in
no web framework and the protocol surface is six JSON routes.  The
event loop does admission and I/O; every query, update, and program
evaluation runs off-loop on a bounded worker pool via
``run_in_executor`` so a slow inference call can never stall ``GET
/healthz``.

Routes
------
===== ============================== ===========================================
GET   ``/healthz``                   liveness + admission pressure
GET   ``/metrics``                   Prometheus text from the process registry
GET   ``/tenants``                   tenant listing
POST  ``/tenants/{name}``            create from ``{"source"|"path"|"session"|"store"}``
DELETE ``/tenants/{name}``           evict tenant, close its executor
GET   ``/tenants/{name}/stats``      executor stats + breaker board
POST  ``/tenants/{name}/query``      ``{"specs": [...]}`` → batch envelope
POST  ``/tenants/{name}/facts``      ``{"facts": "..."}`` → update envelope
===== ============================== ===========================================

Every body is a versioned JSON envelope (:mod:`repro.serve.envelopes`);
errors reuse the CLI's structured error envelope.  Shed requests get
429/503 with a ``Retry-After`` header.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from ..core.errors import P3Error, UnknownLiteralError, UnknownTupleError
from ..telemetry import runtime as telemetry_runtime
from ..telemetry.metrics import PROMETHEUS_CONTENT_TYPE
from .admission import AdmissionController, AdmissionError
from .envelopes import (
    batch_envelope,
    error_envelope,
    health_envelope,
    tenant_envelope,
    tenants_envelope,
    update_envelope,
)
from .tenants import (
    TenantExistsError,
    TenantLimitError,
    TenantRegistry,
    UnknownTenantError,
)

__all__ = ["ProvenanceService", "ServiceHandle", "start_in_background"]

_JSON_CONTENT_TYPE = "application/json; charset=utf-8"
_MAX_HEADER_BYTES = 16384
_HEADER_READ_TIMEOUT = 30.0

_STATUS_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _BadRequest(P3Error, ValueError):
    """Malformed request body or parameters (HTTP 400)."""


class UnknownRouteError(P3Error, KeyError):
    """No handler for this method/path pair (HTTP 404)."""

    def __init__(self, method: str, path: str) -> None:
        super().__init__("No route for %s %s" % (method, path))
        self.method = method
        self.path = path


def _status_for(error: BaseException) -> int:
    """Map a raised exception to an HTTP status.

    Order matters: the tenant errors subclass ``KeyError``/``ValueError``
    and must be matched before the generic 400 bucket.
    """
    if isinstance(error, AdmissionError):
        return error.status
    if isinstance(error, (UnknownTenantError, UnknownRouteError,
                          UnknownTupleError, UnknownLiteralError)):
        return 404
    if isinstance(error, (TenantExistsError, TenantLimitError)):
        return 409
    if isinstance(error, (ValueError, KeyError, TypeError, OSError)):
        return 400
    return 500


class ProvenanceService:
    """The long-lived multi-tenant provenance service."""

    def __init__(self, registry: Optional[TenantRegistry] = None,
                 admission: Optional[AdmissionController] = None,
                 max_body_bytes: int = 4 * 1024 * 1024,
                 degraded_abandoned_threshold: Optional[int] = 8) -> None:
        self.registry = registry if registry is not None else TenantRegistry()
        self.admission = (admission if admission is not None
                          else AdmissionController())
        self.max_body_bytes = max_body_bytes
        # Wedged deadline-runner threads (summed across tenants) at which
        # /healthz flips to "degraded": the process is leaking unkillable
        # threads and a load balancer should rotate it out.  None turns
        # the check off.
        self.degraded_abandoned_threshold = degraded_abandoned_threshold
        self._workers = ThreadPoolExecutor(
            max_workers=self.admission.max_concurrent,
            thread_name_prefix="p3-serve")
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_monotonic: Optional[float] = None
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8080) -> None:
        """Bind and start accepting connections (non-blocking)."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        self._started_monotonic = time.monotonic()

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("service not started")
        await self._server.serve_forever()

    def begin_drain(self) -> None:
        """Close admission: new requests are shed with 503 + Retry-After.

        In-flight requests keep running; ``/healthz`` reports
        ``"draining"`` (still answered — health probes are not admitted
        work).  The listening socket stays open so clients get an orderly
        503, never a connection reset.  Idempotent.
        """
        self.admission.begin_drain()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for in-flight work to finish; True on a clean drain.

        Call :meth:`begin_drain` first.  Polls admission pressure until
        nothing is in flight or queued, or until ``timeout`` elapses —
        in which case the caller should force shutdown (:meth:`stop`
        cancels whatever is still queued on the worker pool; truly
        wedged inference threads cannot be cancelled, which is what
        ``P3Config(isolation="process")`` is for).
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while self.admission.inflight or self.admission.snapshot()["queued"]:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.05)
        return True

    async def stop(self) -> None:
        """Stop accepting connections and release the worker pool.

        The tenant registry is owned by the caller (it may outlive the
        HTTP front-end); close it separately.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):  # idle keep-alive readers
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._workers.shutdown(wait=False, cancel_futures=True)

    # -- connection handling -----------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # service shutdown with the connection idle
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one_request(self, reader: asyncio.StreamReader,
                                  writer: asyncio.StreamWriter) -> bool:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=_HEADER_READ_TIMEOUT)
        except asyncio.TimeoutError:
            return False  # idle keep-alive connection; just drop it
        if not request_line:
            return False
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2))
        except ValueError:
            await self._write_response(
                writer, 400, error_envelope(_BadRequest(
                    "Malformed request line")), close=True)
            return False

        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                await self._write_response(
                    writer, 400, error_envelope(_BadRequest(
                        "Header block too large")), close=True)
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > self.max_body_bytes:
            status = 413 if length > self.max_body_bytes else 400
            await self._write_response(
                writer, status, error_envelope(_BadRequest(
                    "Invalid or oversized Content-Length")), close=True)
            return False
        body = await reader.readexactly(length) if length else b""

        path = target.split("?", 1)[0]
        status, document, extra, route = await self._dispatch(
            method.upper(), path, body)
        self._count_request(route, status)
        keep_alive = headers.get("connection", "").lower() != "close"
        await self._write_response(writer, status, document, extra_headers=extra,
                                   close=not keep_alive)
        return keep_alive

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              document: Any,
                              extra_headers: Optional[Dict[str, str]] = None,
                              close: bool = False) -> None:
        if isinstance(document, bytes):  # pre-rendered (metrics text)
            payload = document
            content_type = (extra_headers or {}).pop(
                "Content-Type", _JSON_CONTENT_TYPE)
        else:
            payload = json.dumps(document).encode("utf-8")
            content_type = _JSON_CONTENT_TYPE
        reason = _STATUS_REASONS.get(status, "Unknown")
        lines = [
            "HTTP/1.1 %d %s" % (status, reason),
            "Content-Type: %s" % content_type,
            "Content-Length: %d" % len(payload),
            "Connection: %s" % ("close" if close else "keep-alive"),
        ]
        for name, value in (extra_headers or {}).items():
            lines.append("%s: %s" % (name, value))
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    def _count_request(self, route: str, status: int) -> None:
        rt = telemetry_runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_http_requests_total", "HTTP requests served.",
                ("route", "status")).labels(
                    route=route, status=str(status)).inc()

    # -- routing -----------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes
                        ) -> Tuple[int, Any, Optional[Dict[str, str]], str]:
        """Returns (status, document-or-bytes, extra headers, route label).

        The route label is the *pattern* (``/tenants/{name}/query``),
        not the raw path, so metric cardinality stays bounded.
        """
        parts = [part for part in path.split("/") if part]
        route = path
        try:
            if parts == ["healthz"] and method == "GET":
                document = self._health()
                # Readiness semantics: a draining service answers (no
                # connection reset) but tells the balancer to go away.
                status = 503 if document["status"] == "draining" else 200
                extra = ({"Retry-After": "1"} if status == 503 else None)
                return status, document, extra, "/healthz"
            if parts == ["metrics"] and method == "GET":
                body_bytes, content_type = self._metrics()
                return 200, body_bytes, {"Content-Type": content_type}, \
                    "/metrics"
            if parts == ["tenants"]:
                if method != "GET":
                    raise _BadRequest("Use POST /tenants/{name} to create")
                return 200, tenants_envelope(self.registry), None, "/tenants"
            if len(parts) == 2 and parts[0] == "tenants":
                route = "/tenants/{name}"
                name = parts[1]
                if method == "POST":
                    return await self._create_tenant(name, body)
                if method == "DELETE":
                    self.registry.remove(name)
                    return 200, {"version": 1, "kind": "tenant_removed",
                                 "tenant": name}, None, route
                raise _BadRequest("Unsupported method %s" % method)
            if len(parts) == 3 and parts[0] == "tenants":
                name, action = parts[1], parts[2]
                route = "/tenants/{name}/%s" % action
                if action == "stats" and method == "GET":
                    return 200, tenant_envelope(self.registry.get(name)), \
                        None, route
                if action == "query" and method == "POST":
                    return await self._query(name, body)
                if action == "facts" and method == "POST":
                    return await self._facts(name, body)
            raise UnknownRouteError(method, path)
        except AdmissionError as error:
            retry_after = max(1, math.ceil(error.retry_after))
            return (error.status, error_envelope(error),
                    {"Retry-After": str(retry_after)}, route)
        except asyncio.CancelledError:
            raise
        except BaseException as error:  # noqa: BLE001 — everything gets an envelope
            return _status_for(error), error_envelope(error), None, route

    # -- handlers ----------------------------------------------------

    def _health(self) -> dict:
        uptime = (time.monotonic() - self._started_monotonic
                  if self._started_monotonic is not None else 0.0)
        return health_envelope(
            self.registry, uptime, self.admission,
            abandoned_threshold=self.degraded_abandoned_threshold)

    def _metrics(self) -> Tuple[bytes, str]:
        rt = telemetry_runtime()
        if rt.enabled:
            text = rt.metrics.to_prometheus()
        else:
            text = "# telemetry disabled; start with --telemetry\n"
        return text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE

    def _json_body(self, body: bytes) -> Dict[str, Any]:
        if not body:
            raise _BadRequest("Request body required")
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest("Request body is not valid JSON: %s"
                              % error) from error
        if not isinstance(document, dict):
            raise _BadRequest("Request body must be a JSON object")
        return document

    async def _create_tenant(self, name: str, body: bytes
                             ) -> Tuple[int, dict, None, str]:
        document = self._json_body(body)
        source = document.get("source")
        path = document.get("path")
        session = document.get("session")
        store = document.get("store")
        persist = document.get("persist", False)
        if not isinstance(persist, bool):
            raise _BadRequest("'persist' must be a boolean")
        overrides = document.get("config")
        if overrides is not None and not isinstance(overrides, dict):
            raise _BadRequest("'config' must be a JSON object")
        loop = asyncio.get_running_loop()
        async with self.admission.admit():
            tenant = await loop.run_in_executor(
                self._workers, lambda: self.registry.create(
                    name, source=source, path=path, session=session,
                    store=store, persist=persist,
                    config_overrides=overrides))
        return 201, tenant_envelope(tenant), None, "/tenants/{name}"

    async def _query(self, name: str, body: bytes
                     ) -> Tuple[int, dict, None, str]:
        document = self._json_body(body)
        specs = document.get("specs")
        if not isinstance(specs, list) or not specs:
            raise _BadRequest("'specs' must be a non-empty list of query "
                              "specs (strings or objects)")
        parallel = document.get("parallel", True)
        if not isinstance(parallel, bool):
            raise _BadRequest("'parallel' must be a boolean")
        tenant = self.registry.get(name)
        loop = asyncio.get_running_loop()
        async with self.admission.admit(tenant):
            batch = await loop.run_in_executor(
                self._workers, lambda: tenant.run_batch(specs, parallel))
        return (200, batch_envelope(name, tenant.system.epoch, batch), None,
                "/tenants/{name}/query")

    async def _facts(self, name: str, body: bytes
                     ) -> Tuple[int, dict, None, str]:
        document = self._json_body(body)
        facts = document.get("facts")
        if not isinstance(facts, str) or not facts.strip():
            raise _BadRequest("'facts' must be a non-empty program string")
        tenant = self.registry.get(name)
        loop = asyncio.get_running_loop()
        async with self.admission.admit(tenant):
            delta, epoch = await loop.run_in_executor(
                self._workers, lambda: tenant.add_facts(facts))
        return (200, update_envelope(name, epoch, delta), None,
                "/tenants/{name}/facts")


class ServiceHandle:
    """A service running on a private event-loop thread.

    Built by :func:`start_in_background` for tests and the chaos
    harness; ``stop()`` is idempotent and joins the thread.
    """

    def __init__(self, service: ProvenanceService, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread, port: int) -> None:
        self.service = service
        self.port = port
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def base_url(self) -> str:
        return "http://127.0.0.1:%d" % self.port

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True

        async def _shutdown() -> None:
            await self.service.stop()
            self._loop.stop()

        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(_shutdown()))
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_in_background(service: ProvenanceService, host: str = "127.0.0.1",
                        port: int = 0) -> ServiceHandle:
    """Run ``service`` on a dedicated thread; returns once it is bound."""
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    failure: Dict[str, BaseException] = {}

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(service.start(host, port))
        except BaseException as error:  # surfaced to the caller below
            failure["error"] = error
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="p3-serve-loop", daemon=True)
    thread.start()
    ready.wait(timeout=30.0)
    if "error" in failure:
        raise failure["error"]
    return ServiceHandle(service, loop, thread, service.port)
