"""Unit tests for the ExSPAN-style rule rewrite."""

import pytest

from repro.datalog.parser import parse_clause, parse_program
from repro.datalog.rewrite import (
    PROV_RELATION,
    RULE_RELATION,
    CompiledRule,
    RewriteError,
    compile_program,
    execution_id,
)
from repro.datalog.terms import atom


class TestGuardScheduling:
    def test_guard_at_earliest_binding_position(self):
        rule = parse_clause(
            "r1 1.0: q(X,Z) :- p(X,Y), s(Y,Z), X!=Y, X!=Z.")
        compiled = CompiledRule(rule)
        # X!=Y bound after first body atom; X!=Z only after the second.
        assert [str(g) for g in compiled.guard_schedule[0]] == ["X!=Y"]
        assert [str(g) for g in compiled.guard_schedule[1]] == ["X!=Z"]

    def test_constant_guard_scheduled_first(self):
        rule = parse_clause('r1 1.0: q(X) :- p(X), X != "a".')
        compiled = CompiledRule(rule)
        assert len(compiled.guard_schedule[0]) == 1

    def test_no_guards(self):
        rule = parse_clause("r1 1.0: q(X) :- p(X).")
        compiled = CompiledRule(rule)
        assert compiled.guard_schedule == [[]]


class TestExecutionId:
    def test_deterministic(self):
        body = (atom("p", 1), atom("q", 2))
        assert execution_id("r1", body) == execution_id("r1", body)

    def test_embeds_label_and_body(self):
        exec_id = execution_id("r7", (atom("p", 1),))
        assert exec_id == "r7[p(1)]"

    def test_body_order_matters(self):
        a, b = atom("p", 1), atom("q", 2)
        assert execution_id("r1", (a, b)) != execution_id("r1", (b, a))


class TestCaptureAtoms:
    def test_three_way_rewrite_shape(self):
        rule = parse_clause("r1 0.8: q(X) :- p(X), s(X).")
        compiled = CompiledRule(rule)
        head = atom("q", 1)
        body = (atom("p", 1), atom("s", 1))
        captures = compiled.capture_atoms(head, body)
        # One prov row plus one rule row per body atom.
        assert captures[0].relation == PROV_RELATION
        assert [c.relation for c in captures[1:]] == [RULE_RELATION] * 2

    def test_prov_row_contents(self):
        rule = parse_clause("r1 0.8: q(X) :- p(X).")
        compiled = CompiledRule(rule)
        head = atom("q", 1)
        body = (atom("p", 1),)
        prov = compiled.capture_atoms(head, body)[0]
        head_repr, probability, exec_id = prov.as_values()
        assert head_repr == "q(1)"
        assert probability == 0.8
        assert exec_id == "r1[p(1)]"

    def test_rule_row_contents(self):
        rule = parse_clause("r1 0.8: q(X) :- p(X).")
        compiled = CompiledRule(rule)
        rows = compiled.capture_atoms(atom("q", 1), (atom("p", 1),))[1:]
        exec_id, label, body_repr = rows[0].as_values()
        assert exec_id == "r1[p(1)]"
        assert label == "r1"
        assert body_repr == "p(1)"


class TestCompileProgram:
    def test_compiles_all_rules(self):
        program = parse_program("""
            p(1).
            r1 1.0: q(X) :- p(X).
            r2 1.0: s(X) :- q(X).
        """)
        compiled = compile_program(program)
        assert [c.label for c in compiled] == ["r1", "r2"]

    def test_rejects_reserved_relations(self):
        program = parse_program("prov_(1,2,3).")
        with pytest.raises(RewriteError):
            compile_program(program)

    def test_rejects_reserved_in_rule(self):
        program = parse_program("p(1). r1 1.0: rule_(X,X,X) :- p(X).")
        with pytest.raises(RewriteError):
            compile_program(program)
