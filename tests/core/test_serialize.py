"""Unit tests for JSON serialization of programs, graphs, polynomials."""

import json

import pytest

from repro import P3
from repro.data import ACQUAINTANCE, acquaintance_program
from repro.inference import exact_probability
from repro.io.serialize import (
    SerializationError,
    graph_from_json,
    graph_to_json,
    load_session,
    metrics_from_json,
    metrics_to_json,
    polynomial_from_json,
    polynomial_to_json,
    program_from_json,
    program_to_json,
    save_session,
    session_from_json,
    session_to_json,
    trace_from_json,
    trace_to_json,
)
from repro.provenance import extract_polynomial


@pytest.fixture()
def evaluated():
    p3 = P3.from_source(ACQUAINTANCE)
    p3.evaluate()
    return p3


class TestProgramRoundTrip:
    def test_identity(self):
        program = acquaintance_program()
        document = program_to_json(program)
        again = program_from_json(document)
        assert str(again) == str(program)

    def test_negation_survives(self):
        from repro.datalog.parser import parse_program
        program = parse_program("""
            p(1). q(1).
            r1 1.0: a(X) :- p(X), not q(X).
        """)
        again = program_from_json(program_to_json(program))
        assert len(again.rules[0].negations) == 1

    def test_version_checked(self):
        with pytest.raises(SerializationError):
            program_from_json({"version": 99, "kind": "program", "source": ""})

    def test_kind_checked(self):
        with pytest.raises(SerializationError):
            program_from_json({"version": 1, "kind": "graph", "source": ""})


class TestPolynomialRoundTrip:
    def test_identity(self, evaluated):
        poly = evaluated.polynomial_of("know", "Ben", "Elena")
        again = polynomial_from_json(polynomial_to_json(poly))
        assert again == poly

    def test_stable_output(self, evaluated):
        poly = evaluated.polynomial_of("know", "Ben", "Elena")
        first = json.dumps(polynomial_to_json(poly), sort_keys=True)
        second = json.dumps(polynomial_to_json(poly), sort_keys=True)
        assert first == second

    def test_empty_polynomial(self):
        from repro.provenance.polynomial import Polynomial
        assert polynomial_from_json(
            polynomial_to_json(Polynomial.zero())).is_zero


class TestGraphRoundTrip:
    def test_structure_preserved(self, evaluated):
        document = graph_to_json(evaluated.graph)
        again = graph_from_json(document)
        assert again.tuple_keys() == evaluated.graph.tuple_keys()
        assert again.executions() == evaluated.graph.executions()
        assert again.probability_map() == evaluated.graph.probability_map()

    def test_queries_work_on_reloaded_graph(self, evaluated):
        again = graph_from_json(graph_to_json(evaluated.graph))
        poly = extract_polynomial(again, 'know("Ben","Elena")')
        value = exact_probability(poly, again.probability_map())
        assert value == pytest.approx(0.16384)


class TestPropertyRoundTrips:
    from hypothesis import given, settings, strategies as st

    @staticmethod
    def _polynomials():
        from hypothesis import strategies as st
        from repro.provenance.polynomial import (
            Monomial, Polynomial, rule_literal, tuple_literal)
        pool = ([tuple_literal("t(%d)" % i) for i in range(5)]
                + [rule_literal("r%d" % i) for i in range(3)])

        @st.composite
        def build(draw):
            count = draw(st.integers(min_value=0, max_value=5))
            monomials = []
            for _ in range(count):
                width = draw(st.integers(min_value=1, max_value=4))
                monomials.append(Monomial(draw(st.permutations(pool))[:width]))
            return Polynomial(monomials)

        return build()

    @settings(max_examples=50, deadline=None)
    @given(_polynomials.__func__())
    def test_polynomial_round_trip(self, poly):
        assert polynomial_from_json(polynomial_to_json(poly)) == poly


class TestSession:
    def test_file_round_trip(self, evaluated, tmp_path):
        path = str(tmp_path / "session.json")
        save_session(evaluated.program, evaluated.graph, path)
        program, graph, probabilities, epoch = load_session(path)
        assert str(program) == str(evaluated.program)
        assert epoch == 0
        poly = extract_polynomial(graph, 'know("Ben","Elena")')
        assert exact_probability(poly, probabilities) == pytest.approx(
            0.16384)

    def test_in_memory_round_trip(self, evaluated):
        document = session_to_json(evaluated.program, evaluated.graph)
        session = session_from_json(document)
        assert session.graph.executions() == evaluated.graph.executions()
        assert session.probabilities == evaluated.probabilities

    def test_epoch_round_trip(self, evaluated, tmp_path):
        path = str(tmp_path / "session.json")
        save_session(evaluated.program, evaluated.graph, path, epoch=7)
        assert load_session(path).epoch == 7

    def test_v1_documents_default_to_epoch_zero(self, evaluated):
        document = session_to_json(evaluated.program, evaluated.graph)
        document["version"] = 1
        del document["epoch"]
        assert session_from_json(document).epoch == 0

    def test_bad_epoch_rejected(self, evaluated):
        document = session_to_json(evaluated.program, evaluated.graph)
        document["epoch"] = -3
        with pytest.raises(SerializationError):
            session_from_json(document)

    def test_non_ascii_round_trip(self, tmp_path):
        source = '0.5::likes("Øyvind","Zoë").\nquery(likes("Øyvind","Zoë")).'
        p3 = P3.from_source(source)
        p3.evaluate()
        path = str(tmp_path / "session.json")
        save_session(p3.program, p3.graph, path)
        session = load_session(path)
        assert 'likes("Øyvind","Zoë")' in session.graph.tuple_keys()
        assert str(session.program) == str(p3.program)

    def test_stable_file_output(self, evaluated, tmp_path):
        first = str(tmp_path / "one.json")
        second = str(tmp_path / "two.json")
        save_session(evaluated.program, evaluated.graph, first)
        save_session(evaluated.program, evaluated.graph, second)
        assert open(first).read() == open(second).read()

    def test_cli_export(self, evaluated, tmp_path):
        from repro.cli import main
        program_path = tmp_path / "program.pl"
        program_path.write_text(ACQUAINTANCE)
        out_path = tmp_path / "session.json"
        assert main(["export", str(program_path),
                     "--output", str(out_path)]) == 0
        session = load_session(str(out_path))
        poly = extract_polynomial(session.graph, 'know("Ben","Elena")')
        assert exact_probability(
            poly, session.probabilities) == pytest.approx(0.16384)


class TestTelemetryEnvelopes:
    def make_span(self, span_id="s1", parent_id=None, start_ns=0):
        from repro.telemetry import Span
        span = Span("t1", span_id, parent_id, "op")
        span.start_ns = start_ns
        span.duration_ns = 100
        span.thread = "MainThread"
        return span

    def test_trace_envelope_from_span_objects(self):
        document = trace_to_json(
            [self.make_span("s2", parent_id="s1", start_ns=10),
             self.make_span("s1")],
            anchor_ns=1_000)
        assert document["version"] == 2
        assert document["kind"] == "trace"
        # Sorted by (trace_id, start_ns, span_id) for stable diffs.
        assert [s["span_id"] for s in document["spans"]] == ["s1", "s2"]
        assert document["spans"][0]["start_unix"] == pytest.approx(
            1_000 / 1e9)

    def test_trace_envelope_accepts_span_dicts(self):
        source = self.make_span().to_dict()
        document = trace_to_json([source])
        assert document["spans"] == [source]
        assert document["spans"][0] is not source

    def test_trace_envelope_rejects_other_values(self):
        with pytest.raises(SerializationError):
            trace_to_json(["not a span"])

    def test_trace_round_trip(self):
        document = trace_to_json([self.make_span()])
        spans = trace_from_json(json.loads(json.dumps(document)))
        assert spans == document["spans"]

    def test_trace_from_json_checks_envelope(self):
        with pytest.raises(SerializationError):
            trace_from_json({"version": 99, "kind": "trace", "spans": []})
        with pytest.raises(SerializationError):
            trace_from_json({"version": 1, "kind": "metrics",
                             "metrics": []})
        with pytest.raises(SerializationError):
            trace_from_json({"version": 1, "kind": "trace",
                             "spans": "oops"})

    def test_metrics_round_trip(self):
        from repro.telemetry import MetricsRegistry
        registry = MetricsRegistry()
        registry.counter("hits", labelnames=("cache",)).inc(cache="poly")
        registry.histogram("latency", buckets=(0.1,)).observe(0.05)
        document = metrics_to_json(registry)
        assert document["version"] == 2
        assert document["kind"] == "metrics"
        metrics = metrics_from_json(json.loads(json.dumps(document)))
        assert [m["name"] for m in metrics] == ["hits", "latency"]
        assert metrics == document["metrics"]

    def test_metrics_to_json_requires_registry_protocol(self):
        with pytest.raises(SerializationError):
            metrics_to_json(object())

    def test_metrics_from_json_checks_envelope(self):
        with pytest.raises(SerializationError):
            metrics_from_json({"version": 1, "kind": "metrics",
                               "metrics": {}})
