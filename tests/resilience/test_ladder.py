"""Fallback ladders: rung ordering, retries, skips, and the record."""

import random

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.core.errors import (
    BudgetExceededError,
    TransientInferenceError,
)
from repro.inference.exact import exact_probability
from repro.inference.registry import BackendReading, override_backend
from repro.inference.request import InferenceRequest
from repro.resilience import (
    BreakerBoard,
    BreakerPolicy,
    FallbackLadder,
    FallbackRung,
    LadderExhaustedError,
    RetryPolicy,
)

POLY = make_polynomial(("a", "b"), ("b", "c"), ("d",))
PROBS = random_probabilities(POLY, seed=3)
TRUTH = exact_probability(POLY, PROBS)


def _ladder(rungs=("exact", "bdd", "parallel"), **kwargs):
    kwargs.setdefault("sleep", lambda seconds: None)
    kwargs.setdefault("rng", random.Random(0))
    return FallbackLadder(rungs, **kwargs)


class _Flaky:
    """Backend double failing ``failures`` times before delegating."""

    def __init__(self, failures, error=None):
        self.failures = failures
        self.calls = 0
        self.error = error or TransientInferenceError("injected flake")

    def __call__(self, polynomial, probabilities, request):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return BackendReading("exact", exact_probability(
            polynomial, probabilities))


class TestRungCoercion:
    def test_from_string_and_dict(self):
        assert FallbackRung.coerce("bdd").method == "bdd"
        rung = FallbackRung.coerce(
            {"method": "mc", "timeout": 1.5, "samples": 500,
             "retry": {"max_attempts": 2}})
        assert (rung.method, rung.timeout, rung.samples) == ("mc", 1.5, 500)
        assert rung.retry.max_attempts == 2

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            FallbackRung.coerce({"method": "mc", "bogus": 1})

    def test_requested_hoisted_to_top(self):
        ladder = _ladder(("exact", "bdd", "parallel"))
        assert [r.method for r in ladder.rungs_for("bdd")] \
            == ["bdd", "exact", "parallel"]
        assert [r.method for r in ladder.rungs_for("mc")] \
            == ["mc", "exact", "bdd", "parallel"]
        assert [r.method for r in ladder.rungs_for(None)] \
            == ["exact", "bdd", "parallel"]


class TestHappyPath:
    def test_first_rung_answers(self):
        reading, record = _ladder().run(POLY, PROBS)
        assert reading.value == pytest.approx(TRUTH)
        assert record.answered_by == "exact"
        assert not record.used_fallback
        assert not record.downgraded
        assert record.retries == 0

    def test_transient_failure_retried_same_rung(self):
        flaky = _Flaky(failures=2)
        with override_backend("exact", flaky):
            reading, record = _ladder(
                retry=RetryPolicy(max_attempts=3, backoff_seconds=0.0)
            ).run(POLY, PROBS)
        assert flaky.calls == 3
        assert record.answered_by == "exact"
        assert record.retries == 2
        assert reading.value == pytest.approx(TRUTH)


class TestFallThrough:
    def test_permanent_error_falls_through_immediately(self):
        always_blown = _Flaky(failures=99,
                              error=BudgetExceededError("blown"))
        with override_backend("exact", always_blown):
            reading, record = _ladder(
                retry=RetryPolicy(max_attempts=5, backoff_seconds=0.0)
            ).run(POLY, PROBS)
        assert always_blown.calls == 1  # not retried
        assert record.answered_by == "bdd"
        assert record.used_fallback
        assert reading.value == pytest.approx(TRUTH)

    def test_downgrade_flag_when_sampling_answers(self):
        blown = BudgetExceededError("blown")
        with override_backend("exact", _Flaky(99, blown)), \
                override_backend("bdd", _Flaky(99, blown)):
            reading, record = _ladder().run(
                POLY, PROBS,
                request=InferenceRequest(samples=20000, seed=11))
        assert record.answered_by == "parallel"
        assert record.downgraded  # exact requested, sampling answered
        assert record.stderr is not None
        assert reading.value == pytest.approx(TRUTH, abs=0.02)

    def test_unknown_backend_rung_skipped(self):
        reading, record = _ladder(("no-such-backend", "exact")).run(
            POLY, PROBS)
        assert record.skipped == [
            {"backend": "no-such-backend", "reason": "unknown-backend"}]
        assert record.answered_by == "exact"

    def test_exhaustion_raises_with_record(self):
        blown = BudgetExceededError("blown")
        with override_backend("exact", _Flaky(99, blown)), \
                override_backend("bdd", _Flaky(99, blown)):
            with pytest.raises(LadderExhaustedError) as excinfo:
                _ladder(("exact", "bdd")).run(POLY, PROBS)
        record = excinfo.value.record
        assert record.answered_by is None
        assert [a["backend"] for a in record.attempts] == ["exact", "bdd"]
        assert "blown" in str(excinfo.value)


class TestDeadlines:
    def test_rung_exceeding_remaining_deadline_is_skipped_not_started(self):
        clock = lambda: 100.0  # noqa: E731 — frozen clock
        spy = _Flaky(failures=0)
        with override_backend("exact", spy):
            reading, record = _ladder(
                (FallbackRung("exact", timeout=5.0), "bdd"),
                clock=clock,
            ).run(POLY, PROBS, deadline=100.0 + 1.0)
        assert spy.calls == 0  # never started
        assert record.skipped == [
            {"backend": "exact", "reason": "insufficient-deadline"}]
        assert record.answered_by == "bdd"

    def test_expired_deadline_skips_every_rung(self):
        clock = lambda: 100.0  # noqa: E731
        with pytest.raises(LadderExhaustedError) as excinfo:
            _ladder(("exact", "bdd"), clock=clock).run(
                POLY, PROBS, deadline=99.0)
        reasons = {entry["reason"]
                   for entry in excinfo.value.record.skipped}
        assert reasons == {"deadline-exhausted"}

    def test_rung_timeout_falls_through(self):
        import time as _time

        def stuck(polynomial, probabilities, request):
            _time.sleep(0.5)
            return BackendReading("exact", 0.0)

        with override_backend("exact", stuck):
            reading, record = _ladder(
                (FallbackRung("exact", timeout=0.05), "bdd")
            ).run(POLY, PROBS)
        assert record.answered_by == "bdd"
        assert "RungTimeoutError" in record.attempts[0]["error"]
        assert reading.value == pytest.approx(TRUTH)


class TestBreakers:
    def test_open_breaker_skips_rung(self):
        clock_now = [0.0]
        board = BreakerBoard(BreakerPolicy(
            failure_threshold=0.5, window_size=4, min_calls=2,
            cooldown_seconds=60.0), clock=lambda: clock_now[0])
        breaker = board.breaker("exact")
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"

        spy = _Flaky(failures=0)
        with override_backend("exact", spy):
            reading, record = _ladder(breakers=board,
                                      clock=lambda: clock_now[0]).run(
                POLY, PROBS)
        assert spy.calls == 0
        assert record.skipped == [
            {"backend": "exact", "reason": "breaker-open"}]
        assert record.answered_by == "bdd"

    def test_failures_through_ladder_trip_breaker(self):
        board = BreakerBoard(BreakerPolicy(
            failure_threshold=0.5, window_size=4, min_calls=2,
            cooldown_seconds=60.0))
        ladder = _ladder(breakers=board, retry=RetryPolicy(
            max_attempts=1))
        with override_backend(
                "exact", _Flaky(99, BudgetExceededError("blown"))):
            ladder.run(POLY, PROBS)
            ladder.run(POLY, PROBS)
            _, record = ladder.run(POLY, PROBS)
        assert board.breaker("exact").trips == 1
        assert record.skipped == [
            {"backend": "exact", "reason": "breaker-open"}]
