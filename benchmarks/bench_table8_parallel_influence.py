"""Table 8 — sequential vs parallel influence-query time.

Paper (on its 366-monomial workload): sequential 9.60 s total / 0.14 s per
literal; GPU-parallel 0.85 s / 0.01 s — about 10×.  Our substitution uses
numpy SIMD vectorization as the parallel backend (DESIGN.md §5); the same
order-of-magnitude speedup over the pure-Python sequential estimator is
the shape being reproduced.

Both backends use the same sample budget, so the comparison is pure
execution efficiency.
"""

import time

from repro.queries.influence import influence_query

from reporting import record_table
from workloads import query_workload

SAMPLES = 2000
#: Literal budget for the sequential side (pure Python over a
#: thousand-monomial DNF is slow; the per-literal rate is what matters).
SEQ_LITERALS = 6


def test_table8_sequential_vs_parallel(benchmark):
    p3, key, poly = query_workload()
    probabilities = p3.probabilities
    literals = sorted(poly.literals())

    start = time.perf_counter()
    influence_query(poly, probabilities, literals=literals[:SEQ_LITERALS],
                    method="mc", samples=SAMPLES, seed=1)
    seq_elapsed = time.perf_counter() - start
    seq_per_literal = seq_elapsed / SEQ_LITERALS
    seq_total = seq_per_literal * len(literals)  # extrapolated

    start = time.perf_counter()
    parallel_report = influence_query(
        poly, probabilities, literals=literals,
        method="parallel", samples=SAMPLES, seed=1)
    par_elapsed = time.perf_counter() - start
    par_per_literal = par_elapsed / len(literals)

    speedup = seq_per_literal / par_per_literal
    record_table(
        "table8_parallel_influence",
        "Table 8: influence query time, sequential vs vectorized "
        "(%s: %d monomials, %d literals, %d samples; paper: 9.60s vs "
        "0.85s total, ~10x)" % (key, len(poly), len(literals), SAMPLES),
        ["method", "total (s)", "per-literal (s)", "speedup"],
        [
            ["sequential MC", seq_total, seq_per_literal, 1.0],
            ["parallel (numpy)", par_elapsed, par_per_literal, speedup],
        ],
    )

    assert speedup > 4, "vectorized backend should be several times faster"
    assert parallel_report.most_influential is not None

    benchmark.pedantic(
        influence_query, args=(poly, probabilities),
        kwargs={"literals": literals[:4], "method": "parallel",
                "samples": SAMPLES, "seed": 1},
        rounds=2, iterations=1)
