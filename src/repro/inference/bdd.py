"""Reduced Ordered Binary Decision Diagrams for DNF probability.

ProbLog computes the success probability of the query's monotone DNF by
compiling it into a BDD (Section 2.2, citing Bryant [4]): once the formula
is a BDD, the probability is a single bottom-up weighted pass.  This module
is a small, self-contained ROBDD package:

- hash-consed nodes with complement-free semantics (monotone inputs don't
  need complement edges),
- ``apply`` with operation memoisation,
- :func:`from_polynomial` compiling a provenance polynomial under a given
  (or frequency-derived) variable order,
- :func:`probability`: weighted model count in one memoised traversal,
- :func:`model_count` and :func:`satisfying_assignments` for testing.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import InferenceConfigurationError
from ..provenance.polynomial import (
    Literal,
    Polynomial,
    ProbabilityMap,
    variable_order,
)

# Terminal node ids.
ZERO = 0
ONE = 1


class BDD:
    """A shared ROBDD forest over an ordered sequence of literals.

    Node ids are integers; 0 and 1 are the terminals.  Internal nodes are
    triples ``(level, low, high)`` stored uniquely (hash-consing), where
    ``level`` indexes into :attr:`order`.
    """

    def __init__(self, order: Sequence[Literal]) -> None:
        if len(set(order)) != len(order):
            raise InferenceConfigurationError(
                "BDD variable order contains duplicates")
        self.order: Tuple[Literal, ...] = tuple(order)
        self._level: Dict[Literal, int] = {
            literal: index for index, literal in enumerate(self.order)
        }
        # node id -> (level, low, high); terminals excluded
        self._nodes: List[Tuple[int, int, int]] = []
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_memo: Dict[Tuple[str, int, int], int] = {}

    # -- node management ------------------------------------------------------

    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes) + 2  # ids 0/1 are terminals
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def node(self, node_id: int) -> Tuple[int, int, int]:
        if node_id in (ZERO, ONE):
            raise ValueError("Terminals have no structure")
        return self._nodes[node_id - 2]

    def is_terminal(self, node_id: int) -> bool:
        return node_id in (ZERO, ONE)

    def variable(self, literal: Literal) -> int:
        """BDD for a single literal."""
        return self._make(self._level[literal], ZERO, ONE)

    def size(self, root: int) -> int:
        """Number of internal nodes reachable from ``root``."""
        seen = set()
        stack = [root]
        while stack:
            node_id = stack.pop()
            if self.is_terminal(node_id) or node_id in seen:
                continue
            seen.add(node_id)
            _, low, high = self.node(node_id)
            stack.append(low)
            stack.append(high)
        return len(seen)

    # -- apply ------------------------------------------------------------------

    def apply(self, op: str, left: int, right: int) -> int:
        """Combine two BDDs with ``op`` in {'and', 'or'} (Bryant's Apply)."""
        if op == "and":
            terminal = _and_terminal
        elif op == "or":
            terminal = _or_terminal
        else:
            raise ValueError("Unsupported BDD operation %r" % op)
        return self._apply(op, terminal, left, right)

    def _apply(self, op: str,
               terminal: Callable[[int, int], Optional[int]],
               left: int, right: int) -> int:
        shortcut = terminal(left, right)
        if shortcut is not None:
            return shortcut
        key = (op, left, right) if left <= right else (op, right, left)
        cached = self._apply_memo.get(key)
        if cached is not None:
            return cached

        left_level = self.node(left)[0] if not self.is_terminal(left) else None
        right_level = self.node(right)[0] if not self.is_terminal(right) else None
        if right_level is None or (left_level is not None
                                   and left_level <= right_level):
            level = left_level
        else:
            level = right_level
        assert level is not None

        if left_level == level:
            _, left_low, left_high = self.node(left)
        else:
            left_low = left_high = left
        if right_level == level:
            _, right_low, right_high = self.node(right)
        else:
            right_low = right_high = right

        low = self._apply(op, terminal, left_low, right_low)
        high = self._apply(op, terminal, left_high, right_high)
        result = self._make(level, low, high)
        self._apply_memo[key] = result
        return result

    def conjoin(self, nodes: Sequence[int]) -> int:
        result = ONE
        for node_id in nodes:
            result = self.apply("and", result, node_id)
            if result == ZERO:
                return ZERO
        return result

    def disjoin(self, nodes: Sequence[int]) -> int:
        result = ZERO
        for node_id in nodes:
            result = self.apply("or", result, node_id)
            if result == ONE:
                return ONE
        return result

    # -- queries -------------------------------------------------------------------

    def probability(self, root: int, probabilities: ProbabilityMap) -> float:
        """Weighted model count: P[formula] in one memoised traversal."""
        memo: Dict[int, float] = {ZERO: 0.0, ONE: 1.0}

        def walk(node_id: int) -> float:
            cached = memo.get(node_id)
            if cached is not None:
                return cached
            level, low, high = self.node(node_id)
            p = probabilities[self.order[level]]
            value = (1.0 - p) * walk(low) + p * walk(high)
            memo[node_id] = value
            return value

        return walk(root)

    def evaluate(self, root: int, assignment: Mapping[Literal, bool]) -> bool:
        node_id = root
        while not self.is_terminal(node_id):
            level, low, high = self.node(node_id)
            node_id = high if assignment[self.order[level]] else low
        return node_id == ONE

    def model_count(self, root: int) -> int:
        """Number of satisfying assignments over the full variable order."""
        memo: Dict[Tuple[int, int], int] = {}

        def walk(node_id: int, level: int) -> int:
            if node_id == ZERO:
                return 0
            if node_id == ONE:
                return 2 ** (len(self.order) - level)
            key = (node_id, level)
            cached = memo.get(key)
            if cached is not None:
                return cached
            node_level, low, high = self.node(node_id)
            if node_level > level:
                value = 2 * walk(node_id, level + 1)
            else:
                value = walk(low, level + 1) + walk(high, level + 1)
            memo[key] = value
            return value

        return walk(root, 0)

    def satisfying_assignments(
            self, root: int) -> Iterator[Dict[Literal, bool]]:
        """Yield complete satisfying assignments (testing helper)."""

        def walk(node_id: int, level: int,
                 partial: Dict[Literal, bool]) -> Iterator[Dict[Literal, bool]]:
            if node_id == ZERO:
                return
            if level == len(self.order):
                if node_id == ONE:
                    yield dict(partial)
                return
            literal = self.order[level]
            node_level = (None if self.is_terminal(node_id)
                          else self.node(node_id)[0])
            if node_level is None or node_level > level:
                for value in (False, True):
                    partial[literal] = value
                    yield from walk(node_id, level + 1, partial)
                del partial[literal]
            else:
                _, low, high = self.node(node_id)
                partial[literal] = False
                yield from walk(low, level + 1, partial)
                partial[literal] = True
                yield from walk(high, level + 1, partial)
                del partial[literal]

        yield from walk(root, 0, {})

    def __repr__(self) -> str:
        return "BDD(<%d vars, %d nodes>)" % (len(self.order), len(self._nodes))


def _and_terminal(left: int, right: int) -> Optional[int]:
    if left == ZERO or right == ZERO:
        return ZERO
    if left == ONE:
        return right
    if right == ONE:
        return left
    if left == right:
        return left
    return None


def _or_terminal(left: int, right: int) -> Optional[int]:
    if left == ONE or right == ONE:
        return ONE
    if left == ZERO:
        return right
    if right == ZERO:
        return left
    if left == right:
        return left
    return None


def from_polynomial(polynomial: Polynomial,
                    order: Optional[Sequence[Literal]] = None
                    ) -> Tuple[BDD, int]:
    """Compile a provenance polynomial into (forest, root node id).

    When no order is given, literals are ordered by descending occurrence
    frequency (a standard static heuristic).
    """
    if order is None:
        order = variable_order(polynomial)
    bdd = BDD(order)
    if polynomial.is_zero:
        return bdd, ZERO
    monomial_nodes = []
    for monomial in sorted(polynomial.monomials, key=str):
        literals = sorted(monomial.literals, key=lambda lit: bdd._level[lit])
        monomial_nodes.append(
            bdd.conjoin([bdd.variable(lit) for lit in literals]))
    root = bdd.disjoin(monomial_nodes)
    return bdd, root


def bdd_probability(polynomial: Polynomial,
                    probabilities: ProbabilityMap,
                    order: Optional[Sequence[Literal]] = None) -> float:
    """Compile to a BDD and weighted-model-count: ProbLog's exact pipeline."""
    if polynomial.is_zero:
        return 0.0
    if polynomial.is_one:
        return 1.0
    bdd, root = from_polynomial(polynomial, order)
    if root == ZERO:
        return 0.0
    if root == ONE:
        return 1.0
    return bdd.probability(root, probabilities)
