"""Descriptive statistics over provenance graphs and polynomials.

The evaluation section of the paper talks about provenance *sizes*
constantly — numbers of monomials, distinct literals, derivation path
lengths, compression ratios.  This module centralises those measurements
so benchmarks, examples, and user code report them consistently.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from .graph import ProvenanceGraph
from .polynomial import Polynomial, ProbabilityMap


class PolynomialStats:
    """Size and probability statistics of one provenance polynomial."""

    def __init__(self, monomials: int, literals: int, tuple_literals: int,
                 rule_literals: int, min_width: int, max_width: int,
                 mean_width: float) -> None:
        self.monomials = monomials
        self.literals = literals
        self.tuple_literals = tuple_literals
        self.rule_literals = rule_literals
        self.min_width = min_width
        self.max_width = max_width
        self.mean_width = mean_width

    def __repr__(self) -> str:
        return ("PolynomialStats(%d monomials, %d literals, width %d-%d,"
                " mean %.1f)" % (self.monomials, self.literals,
                                 self.min_width, self.max_width,
                                 self.mean_width))


def polynomial_stats(polynomial: Polynomial) -> PolynomialStats:
    """Monomial/literal counts and monomial-width distribution."""
    widths = [len(monomial) for monomial in polynomial.monomials]
    return PolynomialStats(
        monomials=len(polynomial),
        literals=len(polynomial.literals()),
        tuple_literals=len(polynomial.tuple_literals()),
        rule_literals=len(polynomial.rule_literals()),
        min_width=min(widths) if widths else 0,
        max_width=max(widths) if widths else 0,
        mean_width=(sum(widths) / len(widths)) if widths else 0.0,
    )


def monomial_probability_histogram(
        polynomial: Polynomial, probabilities: ProbabilityMap,
        bins: int = 10) -> List[Tuple[float, float, int]]:
    """Histogram of per-monomial probabilities: (low, high, count) buckets.

    Buckets are logarithmic when probabilities span several orders of
    magnitude (the usual case for long derivations), linear otherwise.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    values = [m.probability(probabilities) for m in polynomial.monomials]
    if not values:
        return []
    low, high = min(values), max(values)
    if low <= 0.0:
        low = min((v for v in values if v > 0.0), default=1e-12)
    buckets: List[Tuple[float, float, int]] = []
    if high / max(low, 1e-300) > 100.0:
        # Logarithmic bucketing.
        log_low, log_high = math.log10(low), math.log10(high)
        step = (log_high - log_low) / bins or 1.0
        edges = [10 ** (log_low + i * step) for i in range(bins)]
        edges.append(high)
    else:
        step = (high - low) / bins or 1.0
        edges = [low + i * step for i in range(bins)]
        edges.append(high)
    for left, right in zip(edges, edges[1:]):
        count = sum(1 for v in values
                    if left <= v <= right or (v < left and left == edges[0]))
        buckets.append((left, right, count))
    return buckets


class GraphStats:
    """Size statistics of a provenance graph."""

    def __init__(self, tuples: int, base_tuples: int, derived_tuples: int,
                 executions: int, edges: int, rules: int,
                 max_derivations_per_tuple: int,
                 mean_derivations_per_tuple: float) -> None:
        self.tuples = tuples
        self.base_tuples = base_tuples
        self.derived_tuples = derived_tuples
        self.executions = executions
        self.edges = edges
        self.rules = rules
        self.max_derivations_per_tuple = max_derivations_per_tuple
        self.mean_derivations_per_tuple = mean_derivations_per_tuple

    def __repr__(self) -> str:
        return ("GraphStats(%d tuples [%d base], %d executions, %d edges)"
                % (self.tuples, self.base_tuples, self.executions,
                   self.edges))


def graph_stats(graph: ProvenanceGraph) -> GraphStats:
    """Vertex/edge counts and derivation fan-in of a provenance graph."""
    keys = graph.tuple_keys()
    base = sum(1 for key in keys if graph.is_base(key))
    derived_counts = [
        len(graph.derivations_of(key))
        for key in keys if graph.is_derived(key)
    ]
    return GraphStats(
        tuples=len(keys),
        base_tuples=base,
        derived_tuples=len(derived_counts),
        executions=len(graph.executions()),
        edges=graph.edge_count(),
        rules=len(graph.rules()),
        max_derivations_per_tuple=max(derived_counts, default=0),
        mean_derivations_per_tuple=(
            sum(derived_counts) / len(derived_counts)
            if derived_counts else 0.0),
    )


def summarize(graph: ProvenanceGraph,
              polynomial: Optional[Polynomial] = None,
              probabilities: Optional[ProbabilityMap] = None) -> str:
    """Human-readable multi-line summary (used by examples and the CLI)."""
    stats = graph_stats(graph)
    lines = [
        "Provenance graph: %d tuples (%d base, %d derived), "
        "%d rule executions, %d edges" % (
            stats.tuples, stats.base_tuples, stats.derived_tuples,
            stats.executions, stats.edges),
        "  derivations per derived tuple: mean %.2f, max %d" % (
            stats.mean_derivations_per_tuple,
            stats.max_derivations_per_tuple),
    ]
    if polynomial is not None:
        poly = polynomial_stats(polynomial)
        lines.append(
            "Polynomial: %d monomials over %d literals "
            "(%d tuples + %d rules), width %d-%d (mean %.1f)" % (
                poly.monomials, poly.literals, poly.tuple_literals,
                poly.rule_literals, poly.min_width, poly.max_width,
                poly.mean_width))
        if probabilities is not None and poly.monomials:
            values = sorted(
                (m.probability(probabilities)
                 for m in polynomial.monomials), reverse=True)
            lines.append(
                "  monomial probabilities: max %.4g, median %.4g, min %.4g"
                % (values[0], values[len(values) // 2], values[-1]))
    return "\n".join(lines)
