"""Demand-driven grounding: magic sets evaluated over the term arena.

:func:`ground_goal` runs the existing magic-set transform
(:mod:`repro.datalog.magic`) for one query pattern and evaluates the
rewritten program semi-naively over a :class:`~repro.ground.arena.FactStore`
overlay — original EDB tables are read in place, and only the demand
(``m_*``) and adorned relations the query actually reaches are ever
materialized.  The result is translated straight into a *cleaned*
:class:`~repro.provenance.graph.ProvenanceGraph` in original terms:

- magic tuples and the executions deriving them are dropped,
- bridge executions (adorned wrappers around stored IDB facts) collapse
  onto the base tuple they wrap,
- adorned rule labels map back to the original labels,

exactly mirroring :func:`repro.datalog.magic.original_provenance_graph`.
Tuple keys are rendered through ``str(Atom(...))`` — the same code path
the engine's :class:`~repro.provenance.graph.GraphBuilder` uses — so
extraction over the grounded subgraph yields polynomials byte-identical
to full evaluation (asserted in ``tests/ground/``).
"""

from __future__ import annotations

import operator
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import telemetry
from ..datalog.ast import Program, Rule
from ..datalog.engine import EvaluationError
from ..datalog.magic import (
    ADORN_SEP, MAGIC_PREFIX, MagicProgram, magic_transform)
from ..datalog.terms import Atom, Constant, Variable, unify_atom
from ..provenance.graph import ProvenanceGraph, RuleExecution
from .arena import FactStore, TermArena

_OPERATORS: Dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Rule roles in the magic-transformed program.
_KIND_MAGIC = "magic"      # derives m_* demand tuples; pure bookkeeping
_KIND_ADORNED = "adorned"  # adorned copy of an original rule
_KIND_BRIDGE = "bridge"    # wraps a stored IDB fact into its adorned copy


class _AtomPlan:
    """One body atom compiled against the slot layout of its rule."""

    __slots__ = ("relation", "consts", "prechecks", "binds", "postchecks")

    def __init__(self, relation: str,
                 consts: Tuple[Tuple[int, int], ...],
                 prechecks: Tuple[Tuple[int, int], ...],
                 binds: Tuple[Tuple[int, int], ...],
                 postchecks: Tuple[Tuple[int, int], ...]) -> None:
        self.relation = relation
        self.consts = consts          # (column, term id): constant argument
        self.prechecks = prechecks    # (column, slot): var bound earlier
        self.binds = binds            # (column, slot): first occurrence
        self.postchecks = postchecks  # (column, slot): repeat within atom


class _RulePlan:
    """A rule of the magic program compiled for arena evaluation."""

    __slots__ = ("index", "label", "probability", "kind", "orig_label",
                 "head_relation", "head_args", "num_slots", "atoms", "guards")

    def __init__(self, index: int, rule: Rule, kind: str,
                 orig_label: Optional[str], head_args, num_slots: int,
                 atoms: Tuple[_AtomPlan, ...], guards) -> None:
        self.index = index
        self.label = rule.label
        self.probability = rule.probability
        self.kind = kind
        self.orig_label = orig_label
        self.head_relation = rule.head.relation
        self.head_args = head_args  # (is_slot, slot-or-tid) per position
        self.num_slots = num_slots
        self.atoms = atoms
        self.guards = guards        # per body position: tuple of callables


class GroundedGoal:
    """Outcome of query-directed grounding for one pattern.

    Attributes
    ----------
    pattern:
        The queried atom.
    magic:
        The :class:`~repro.datalog.magic.MagicProgram` that was evaluated.
    graph:
        Cleaned provenance subgraph in original relations and rule labels
        — the query-relevant part of what full evaluation would build.
    answers:
        Original-relation tuple keys matching the pattern, in derivation
        order.
    atoms:
        Derived ground atoms (original relations) for merging into a
        :class:`~repro.datalog.database.Database`.
    stats:
        Evaluation counters: rounds, firings, derived_rows, total_rows,
        seconds.
    """

    __slots__ = ("pattern", "magic", "graph", "answers", "atoms", "stats")

    def __init__(self, pattern: Atom, magic: MagicProgram,
                 graph: ProvenanceGraph, answers: List[str],
                 atoms: List[Atom], stats: Dict[str, Any]) -> None:
        self.pattern = pattern
        self.magic = magic
        self.graph = graph
        self.answers = answers
        self.atoms = atoms
        self.stats = stats


def ground_goal(program: Program, pattern: Atom,
                base_store: Optional[FactStore] = None,
                max_rounds: Optional[int] = None,
                max_tuples: Optional[int] = None) -> GroundedGoal:
    """Ground ``program`` restricted to derivations relevant to ``pattern``.

    ``base_store`` — a :class:`FactStore` previously built from the same
    program — lets repeated goals share interned EDB tables; when omitted
    one is built on the fly.  ``max_rounds`` / ``max_tuples`` carry the
    engine's safety-rail semantics (``max_tuples`` counts all facts
    visible to the grounder, matching ``Database.count()``) and raise
    :class:`~repro.datalog.engine.EvaluationError` when exceeded.

    Raises :class:`~repro.datalog.magic.MagicTransformError` for programs
    outside the magic fragment (negation, non-IDB query relation,
    reserved names).
    """
    rt = telemetry.runtime()
    if not rt.enabled:
        return _ground_goal(program, pattern, base_store,
                            max_rounds, max_tuples)
    with rt.tracer.span("ground.goal", pattern=str(pattern)) as span:
        goal = _ground_goal(program, pattern, base_store,
                            max_rounds, max_tuples)
        span.set_attributes(answers=len(goal.answers), **goal.stats)
    return goal


def _ground_goal(program: Program, pattern: Atom,
                 base_store: Optional[FactStore],
                 max_rounds: Optional[int],
                 max_tuples: Optional[int]) -> GroundedGoal:
    started = time.perf_counter()
    magic = magic_transform(program, pattern)
    if base_store is None:
        base_store = FactStore.from_program(program)
    store = FactStore(parent=base_store)

    # Seed the overlay: of the transformed program's facts, only the magic
    # seed is new — original facts resolve to their parent rows.  A miss on
    # a parent-owned relation means the store is stale for this program and
    # add_row raises, which is the invariant we want surfaced.
    for fact in magic.program.facts:
        store.add(fact.atom.relation, fact.atom.as_values())

    plans = _compile(magic, store.arena)
    plans_by_relation: Dict[str, List[Tuple[_RulePlan, int]]] = {}
    for plan in plans:
        for position, atom_plan in enumerate(plan.atoms):
            plans_by_relation.setdefault(atom_plan.relation, []).append(
                (plan, position))

    firings: List[Tuple[_RulePlan, int, Tuple[int, ...]]] = []
    rounds = _evaluate(store, plans_by_relation, firings,
                       max_rounds, max_tuples)

    graph, answers, atoms = _translate(store, magic, firings, pattern)
    stats = {
        "rounds": rounds,
        "firings": len(firings),
        "derived_rows": store.local_count(),
        "total_rows": store.count(),
        "seconds": time.perf_counter() - started,
    }
    return GroundedGoal(pattern, magic, graph, answers, atoms, stats)


# -- compilation ---------------------------------------------------------------


def _compile(magic: MagicProgram, arena: TermArena) -> List[_RulePlan]:
    plans: List[_RulePlan] = []
    for index, rule in enumerate(magic.program.rules):
        slots: Dict[Variable, int] = {}
        bound_at: Dict[Variable, int] = {}
        atoms: List[_AtomPlan] = []
        for position, atom in enumerate(rule.body):
            consts: List[Tuple[int, int]] = []
            prechecks: List[Tuple[int, int]] = []
            binds: List[Tuple[int, int]] = []
            postchecks: List[Tuple[int, int]] = []
            local: Set[Variable] = set()
            for column, arg in enumerate(atom.args):
                if isinstance(arg, Constant):
                    consts.append((column, arena.intern(arg.value)))
                    continue
                slot = slots.get(arg)
                if slot is None:
                    slot = len(slots)
                    slots[arg] = slot
                    bound_at[arg] = position
                    local.add(arg)
                    binds.append((column, slot))
                elif arg in local:
                    # Repeated variable within this atom: the index lookup
                    # cannot see the binding yet, so check the row instead.
                    postchecks.append((column, slot))
                else:
                    prechecks.append((column, slot))
            atoms.append(_AtomPlan(atom.relation, tuple(consts),
                                   tuple(prechecks), tuple(binds),
                                   tuple(postchecks)))

        guards: List[List[Callable[[List[int]], bool]]] = [
            [] for _ in rule.body]
        for comparison in rule.constraints:
            at = max((bound_at[var] for var in comparison.variables()),
                     default=0)
            guards[at].append(_compile_guard(comparison, slots, arena))

        head_args = tuple(
            (False, arena.intern(arg.value)) if isinstance(arg, Constant)
            else (True, slots[arg])
            for arg in rule.head.args)

        if rule.head.relation.startswith(MAGIC_PREFIX):
            kind, orig_label = _KIND_MAGIC, None
        elif rule.label in magic.label_map:
            kind, orig_label = _KIND_ADORNED, magic.label_map[rule.label]
        else:
            kind, orig_label = _KIND_BRIDGE, None

        plans.append(_RulePlan(index, rule, kind, orig_label, head_args,
                               len(slots), tuple(atoms),
                               tuple(tuple(g) for g in guards)))
    return plans


def _compile_guard(comparison, slots: Dict[Variable, int],
                   arena: TermArena) -> Callable[[List[int]], bool]:
    """Compile a Comparison to a slot-environment predicate.

    Mirrors :meth:`repro.datalog.builtins.Comparison.evaluate` exactly,
    including the mixed-type rule: a TypeError reads as false, except for
    ``!=`` which reads as true.
    """
    op = _OPERATORS[comparison.op]
    true_on_type_error = comparison.op == "!="

    def resolver(term):
        if isinstance(term, Variable):
            slot = slots[term]
            value_of = arena.value
            return lambda env: value_of(env[slot])
        value = term.value
        return lambda env: value

    left = resolver(comparison.left)
    right = resolver(comparison.right)

    def guard(env: List[int]) -> bool:
        try:
            return op(left(env), right(env))
        except TypeError:
            return true_on_type_error

    return guard


# -- semi-naive evaluation -----------------------------------------------------


def _evaluate(store: FactStore,
              plans_by_relation: Dict[str, List[Tuple[_RulePlan, int]]],
              firings: List[Tuple[_RulePlan, int, Tuple[int, ...]]],
              max_rounds: Optional[int],
              max_tuples: Optional[int]) -> int:
    """Run the magic program to fixpoint; returns the round count.

    Every rule of a magic program starts with its (derived) demand guard,
    so a pure delta-driven loop is complete: each round pivots every rule
    on the new rows of each derived relation appearing in its body, with
    the other positions unrestricted.  Re-enumerations are deduplicated by
    ``(rule, body gids)``, which also guarantees every distinct firing is
    recorded exactly once for provenance.
    """
    seen: Set[Tuple[int, Tuple[int, ...]]] = set()
    prev_lens: Dict[str, int] = {}
    rounds = 0
    while True:
        windows: Dict[str, Tuple[int, int]] = {}
        for relation in store.owned_relations():
            table = store.table(relation)
            current = len(table) if table is not None else 0
            low = prev_lens.get(relation, 0)
            if current > low:
                windows[relation] = (low, current)
                prev_lens[relation] = current
        if not windows:
            break
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError("Exceeded max_rounds=%d" % max_rounds)
        for relation, window in windows.items():
            for plan, position in plans_by_relation.get(relation, ()):
                _apply_rule(store, plan, position, window, seen, firings,
                            max_tuples)
    return rounds


def _apply_rule(store: FactStore, plan: _RulePlan, pivot: int,
                window: Tuple[int, int],
                seen: Set[Tuple[int, Tuple[int, ...]]],
                firings: List[Tuple[_RulePlan, int, Tuple[int, ...]]],
                max_tuples: Optional[int]) -> None:
    atoms = plan.atoms
    nbody = len(atoms)
    tables = []
    for atom_plan in atoms:
        table = store.table(atom_plan.relation)
        if table is None:
            return
        tables.append(table)

    env: List[int] = [0] * plan.num_slots
    gids: List[int] = [0] * nbody
    guards = plan.guards
    rule_index = plan.index
    head_args = plan.head_args
    head_relation = plan.head_relation

    def descend(position: int) -> None:
        if position == nbody:
            body = tuple(gids)
            key = (rule_index, body)
            if key in seen:
                return
            seen.add(key)
            head_row = tuple(env[value] if is_slot else value
                             for is_slot, value in head_args)
            head_gid, inserted = store.add_row(head_relation, head_row)
            if (inserted and max_tuples is not None
                    and store.count() > max_tuples):
                raise EvaluationError(
                    "Exceeded max_tuples=%d" % max_tuples)
            firings.append((plan, head_gid, body))
            return
        atom_plan = atoms[position]
        table = tables[position]
        low, high = window if position == pivot else (0, len(table))
        bound = list(atom_plan.consts)
        for column, slot in atom_plan.prechecks:
            bound.append((column, env[slot]))
        rows = table.rows
        table_gids = table.gids
        binds = atom_plan.binds
        postchecks = atom_plan.postchecks
        position_guards = guards[position]
        for row_position in table.match(bound, low, high):
            row = rows[row_position]
            for column, slot in binds:
                env[slot] = row[column]
            ok = True
            for column, slot in postchecks:
                if row[column] != env[slot]:
                    ok = False
                    break
            if ok and position_guards:
                for guard in position_guards:
                    if not guard(env):
                        ok = False
                        break
            if not ok:
                continue
            gids[position] = table_gids[row_position]
            descend(position + 1)

    descend(0)


# -- translation to a cleaned provenance graph ---------------------------------


def _translate(store: FactStore, magic: MagicProgram,
               firings: Sequence[Tuple[_RulePlan, int, Tuple[int, ...]]],
               pattern: Atom
               ) -> Tuple[ProvenanceGraph, List[str], List[Atom]]:
    graph = ProvenanceGraph()
    for rule in magic.program.rules:
        original = magic.label_map.get(rule.label)
        if original is not None:
            graph.add_rule(original, rule.probability)

    key_of: Dict[int, str] = {}
    atom_rows: Set[Tuple[str, Tuple[int, ...]]] = set()
    atoms: List[Atom] = []

    def render(gid: int) -> str:
        """Original-terms key for a grounded fact, registering base-ness.

        Adorned and original spellings of one tuple render to the same
        bytes because both go through ``str(Atom(...))`` — the exact key
        path :class:`~repro.provenance.graph.GraphBuilder` uses.
        """
        key = key_of.get(gid)
        if key is not None:
            return key
        table, position = store.location(gid)
        row = table.rows[position]
        relation = table.name
        at = relation.find(ADORN_SEP)
        original_relation = relation[:at] if at != -1 else relation
        arena = store.arena
        atom = Atom(original_relation,
                    tuple(Constant(arena.value(tid)) for tid in row))
        key = str(atom)
        key_of[gid] = key
        meta = store.meta(gid)
        if meta is None and at != -1:
            # Adorned copy: if the original relation stores this very row,
            # the stripped key *is* that base fact (bridge collapse).
            original_table = store.table(original_relation)
            if original_table is not None:
                base_position = original_table.local_index(row)
                if base_position is not None:
                    meta = store.meta(original_table.gids[base_position])
        if meta is not None:
            graph.add_base_tuple(key, meta[0], meta[1])
        elif at != -1 and (original_relation, row) not in atom_rows:
            atom_rows.add((original_relation, row))
            atoms.append(atom)
        return key

    for plan, head_gid, body_gids in firings:
        if plan.kind == _KIND_MAGIC:
            continue
        if plan.kind == _KIND_BRIDGE:
            # rel@ad(args) <- [m_..., rel(args)]: the wrapped base tuple
            # takes the adorned tuple's place and the execution vanishes.
            for gid in body_gids:
                if not store.relation_of(gid).startswith(MAGIC_PREFIX):
                    render(gid)
            continue
        head_key = render(head_gid)
        body_keys = tuple(
            render(gid) for gid in body_gids
            if not store.relation_of(gid).startswith(MAGIC_PREFIX))
        graph.add_execution(RuleExecution(
            plan.orig_label, head_key, body_keys, plan.probability))

    answers: List[str] = []
    answer_table = store.table(magic.query_relation)
    if answer_table is not None:
        arena = store.arena
        for position, gid in enumerate(answer_table.gids):
            # The adorned answer table holds every tuple derived under
            # this adornment — including ones sub-demands asked for.
            # Only tuples unifying with the query pattern are answers.
            ground = Atom(pattern.relation,
                          tuple(Constant(arena.value(tid))
                                for tid in answer_table.rows[position]))
            if unify_atom(pattern, ground) is None:
                continue
            answers.append(render(gid))
    return graph, answers, atoms
