"""Vectorized ("parallel") Monte-Carlo estimation — the Table 8 backend.

Table 8 of the paper contrasts sequential Monte-Carlo with a GPU
implementation (4× GTX 1080 Ti) and reports a ~10× speedup, observing
that DNF sampling is embarrassingly parallel.  We do not have GPUs, so —
per the substitution policy in DESIGN.md — this backend exploits the same
parallelism on the CPU through the shared bitset-packed sampling kernel
(:mod:`repro.inference.kernel`): the whole sample matrix is drawn at
once, rows are packed into ``uint64`` words, and every monomial is one
packed-mask comparison over the batch.  :class:`CompiledPolynomial` (the
kernel's compiled form, re-exported here) is the single compiled
evaluation path all Monte-Carlo backends share.

The estimator is sampling-equivalent to the sequential baseline (same
Bernoulli model), so results agree within Monte-Carlo error.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import InferenceConfigurationError
from ..provenance.polynomial import Literal, Polynomial, ProbabilityMap
from .kernel import CompiledPolynomial, kernel_probability
from .montecarlo import MonteCarloEstimate

__all__ = [
    "CompiledPolynomial",
    "parallel_probability",
    "batch_parallel_probability",
    "parallel_conditioned_pair",
]


def parallel_probability(polynomial: Polynomial,
                         probabilities: ProbabilityMap,
                         samples: int = 10000,
                         seed: Optional[int] = None,
                         rng: Optional[np.random.Generator] = None,
                         compiled: Optional[CompiledPolynomial] = None,
                         workers: int = 1,
                         deadline: Optional[float] = None
                         ) -> MonteCarloEstimate:
    """Vectorized estimate of P[λ] — the Table 8 "parallel" backend.

    ``workers > 1`` additionally shards the sample budget across the
    kernel's thread pool (the RNG fill and packed-mask ufuncs release
    the GIL); the shard layout depends only on ``samples``, so results
    are identical for every worker count.
    """
    return kernel_probability(
        polynomial, probabilities, samples=samples, seed=seed, rng=rng,
        compiled=compiled, workers=workers, deadline=deadline)


def batch_parallel_probability(polynomials: Sequence[Polynomial],
                               probabilities: ProbabilityMap,
                               samples: int = 10000,
                               seed: Optional[int] = None,
                               max_workers: int = 4
                               ) -> List[MonteCarloEstimate]:
    """Estimate P[λ] for a batch of polynomials across a thread pool.

    Per-*query* parallelism on top of the per-literal vectorization: each
    polynomial is compiled and sampled independently on its own worker.
    The sampling inner loop is numpy (packed-bitset ufuncs + RNG), which
    releases the GIL, so threads achieve real concurrency without the
    pickling cost of a process pool.

    Seeding is per-polynomial via ``SeedSequence(seed).spawn(n)``, so
    results are independent of scheduling order and of ``max_workers``,
    and the workers' streams are statistically independent.  (The earlier
    ``seed + i`` scheme produced overlapping streams whenever two batches
    were themselves seeded with nearby offsets — e.g. batched influence
    queries deriving seeds by offsetting — which correlated their
    Monte-Carlo errors.)
    """
    if samples <= 0:
        raise InferenceConfigurationError("samples must be positive")
    if max_workers <= 0:
        raise InferenceConfigurationError("max_workers must be positive")
    polynomials = list(polynomials)
    if not polynomials:
        return []
    streams = np.random.SeedSequence(seed).spawn(len(polynomials))

    def _one(index: int) -> MonteCarloEstimate:
        return parallel_probability(
            polynomials[index], probabilities,
            samples=samples, rng=np.random.default_rng(streams[index]))

    if max_workers == 1 or len(polynomials) == 1:
        return [_one(i) for i in range(len(polynomials))]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_one, range(len(polynomials))))


def parallel_conditioned_pair(polynomial: Polynomial,
                              probabilities: ProbabilityMap,
                              literal: Literal,
                              samples: int = 10000,
                              seed: Optional[int] = None,
                              rng: Optional[np.random.Generator] = None,
                              compiled: Optional[CompiledPolynomial] = None
                              ) -> tuple:
    """Estimate (P[λ|x=1], P[λ|x=0]) with common random numbers.

    One shared sample matrix is evaluated twice with the literal's column
    forced to 1 and then 0; the difference of the two estimates is the
    influence of the literal (Definition 4.1) with dramatically lower
    variance than independent sampling.
    """
    if compiled is None:
        compiled = CompiledPolynomial(polynomial)
    if rng is None:
        rng = np.random.default_rng(seed)
    matrix = compiled.sample_matrix(probabilities, samples, rng)
    column = compiled.index_of(literal)

    matrix[:, column] = True
    hits_true = int(compiled.evaluate_matrix(matrix).sum())
    matrix[:, column] = False
    hits_false = int(compiled.evaluate_matrix(matrix).sum())

    return (
        MonteCarloEstimate(hits_true / samples, samples, hits_true),
        MonteCarloEstimate(hits_false / samples, samples, hits_false),
    )
