"""Magic-set transformation: goal-directed evaluation of one query.

Bottom-up evaluation computes the *entire* least model, but a provenance
query cares about one tuple (or one pattern).  The classical magic-set
transformation specialises the program to the query: *magic* predicates
propagate the demanded bindings top-down (following a left-to-right
sideways-information-passing strategy), and every original rule is guarded
by the magic predicate of its head adornment, so the engine only derives
tuples that can contribute to the query.

Correctness contract (tested in ``tests/datalog/test_magic.py``): for the
queried pattern, the transformed program derives exactly the matching
tuples of the original least model, and — after renaming adorned rule
labels back (:func:`normalize_polynomial`) — their provenance polynomials
are *identical* to those extracted from full evaluation.  All magic
clauses carry probability 1.0; magic literals are deterministic demand
markers and are stripped from polynomials.

Limitations: programs with negation are rejected (magic sets under
stratified negation require more careful labelling), as are reserved
relation names.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .ast import Fact, Program, Rule
from .terms import Atom, Constant, Term, Variable

#: Separator between a relation name and its adornment.
ADORN_SEP = "@"
#: Prefix of magic (demand) relations.
MAGIC_PREFIX = "m_"


class MagicTransformError(ValueError):
    """Raised when a program or query cannot be magic-transformed."""


class ReservedRelationError(MagicTransformError):
    """The input program already uses reserved relation names.

    ``m_``-prefixed names are magic demand predicates and names
    containing ``@`` are adornment-specialised copies; a program that
    defines either would collide with the rewrite's own output.  The
    parser rejects ``m_`` names at parse time; this guard covers
    programs built programmatically.
    """

    def __init__(self, names: Set[str]) -> None:
        self.names = frozenset(names)
        listed = ", ".join(repr(name) for name in sorted(self.names))
        super().__init__(
            "program uses reserved relation names (%s): names starting "
            "with %r or containing %r are reserved for the magic-set "
            "transform; rename these relations" % (listed, MAGIC_PREFIX, ADORN_SEP))


def adornment_of(atom: Atom, bound: Set[Variable]) -> str:
    """The b/f string of an atom under a set of bound variables."""
    letters = []
    for arg in atom.args:
        if isinstance(arg, Constant) or arg in bound:
            letters.append("b")
        else:
            letters.append("f")
    return "".join(letters)


def adorned_name(relation: str, adornment: str) -> str:
    return "%s%s%s" % (relation, ADORN_SEP, adornment)


def magic_name(relation: str, adornment: str) -> str:
    return MAGIC_PREFIX + adorned_name(relation, adornment)


def _bound_args(atom: Atom, adornment: str) -> Tuple[Term, ...]:
    return tuple(arg for arg, letter in zip(atom.args, adornment)
                 if letter == "b")


class MagicProgram:
    """Outcome of the transformation.

    Attributes
    ----------
    program:
        The rewritten program (magic seed fact + magic rules + guarded
        adorned rules + original EDB facts).
    query_relation:
        The adorned relation holding the query's answers
        (e.g. ``trustPath@bf``).
    label_map:
        Adorned rule label → original rule label, for
        :func:`normalize_polynomial`.
    """

    def __init__(self, program: Program, query_relation: str,
                 original_relation: str,
                 label_map: Dict[str, str]) -> None:
        self.program = program
        self.query_relation = query_relation
        self.original_relation = original_relation
        self.label_map = dict(label_map)

    def original_key(self, adorned_key: str) -> str:
        """Map an adorned answer key back to the original relation name."""
        prefix = self.query_relation + "("
        if adorned_key.startswith(prefix):
            return self.original_relation + "(" + adorned_key[len(prefix):]
        if adorned_key == self.query_relation:
            return self.original_relation
        raise KeyError("Key %r is not an answer of the magic query"
                       % adorned_key)

    def __repr__(self) -> str:
        return "MagicProgram(query=%s, <%d clauses>)" % (
            self.query_relation, len(self.program))


def magic_transform(program: Program, query: Atom) -> MagicProgram:
    """Specialise ``program`` to the query pattern ``query``.

    The pattern's constants become bound positions; its variables stay
    free.  Only rules (transitively) relevant to the query's relation are
    kept.
    """
    reserved = {
        name
        for name in (program.relations() | {query.relation})
        if name.startswith(MAGIC_PREFIX) or ADORN_SEP in name
    }
    if reserved:
        raise ReservedRelationError(reserved)
    if any(rule.negations for rule in program.rules):
        raise MagicTransformError(
            "Magic-set transformation does not support negation")
    idb = program.idb_relations()
    if query.relation not in idb:
        raise MagicTransformError(
            "Query relation %r is not derived by any rule" % query.relation)

    rules_by_head: Dict[str, List[Rule]] = {}
    for rule in program.rules:
        rules_by_head.setdefault(rule.head.relation, []).append(rule)

    transformed = Program()
    label_map: Dict[str, str] = {}
    label_counts: Dict[str, int] = {}

    # Worklist of (relation, adornment) pairs still to expand.
    query_adornment = adornment_of(query, set())
    pending: List[Tuple[str, str]] = [(query.relation, query_adornment)]
    done: Set[Tuple[str, str]] = set()

    # Seed: the magic fact carrying the query's constants.
    seed_args = _bound_args(query, query_adornment)
    seed_relation = magic_name(query.relation, query_adornment)
    if seed_args:
        transformed.add(Fact(Atom(seed_relation, seed_args), 1.0,
                             "magicseed"))
    else:
        transformed.add(Fact(Atom(seed_relation + "_seed", ()), 1.0,
                             "magicseed"))

    while pending:
        relation, adornment = pending.pop()
        if (relation, adornment) in done:
            continue
        done.add((relation, adornment))
        for rule in rules_by_head.get(relation, ()):
            _adorn_rule(rule, adornment, idb, transformed, pending,
                        label_map, label_counts)

    # Original EDB facts (and IDB base facts, which stay under their
    # original relation and are bridged below).
    for fact in program.facts:
        transformed.add(Fact(fact.atom, fact.probability, fact.label))

    # IDB relations with base facts (the Acquaintance know/2 shape): bridge
    # each demanded adornment to the stored facts with a deterministic rule.
    fact_relations = {fact.atom.relation for fact in program.facts}
    bridge_index = 0
    for relation, adornment in sorted(done):
        if relation not in fact_relations:
            continue
        variables = tuple(Variable("V%d" % i) for i in range(len(adornment)))
        head = Atom(adorned_name(relation, adornment), variables)
        body = [
            Atom(magic_name(relation, adornment),
                 _bound_args(head, adornment)) if "b" in adornment
            else Atom(magic_name(relation, adornment) + "_seed", ()),
            Atom(relation, variables),
        ]
        bridge_index += 1
        transformed.add(Rule(head, body, (), 1.0,
                             "bridge%d" % bridge_index))

    return MagicProgram(
        transformed,
        adorned_name(query.relation, query_adornment),
        query.relation,
        label_map,
    )


def _adorn_rule(rule: Rule, adornment: str, idb: Set[str],
                transformed: Program, pending: List[Tuple[str, str]],
                label_map: Dict[str, str],
                label_counts: Dict[str, int]) -> None:
    """Emit the adorned version of one rule plus its magic rules."""
    head = rule.head
    bound: Set[Variable] = {
        arg for arg, letter in zip(head.args, adornment)
        if letter == "b" and isinstance(arg, Variable)
    }

    magic_head_atom = _magic_guard(head, adornment)
    new_body: List[Atom] = [magic_head_atom]
    prefix_for_sip: List[Atom] = [magic_head_atom]

    for atom in rule.body:
        if atom.relation in idb:
            sub_adornment = adornment_of(atom, bound)
            # Magic rule: demand for this subgoal, given the prefix.
            demand_args = _bound_args(atom, sub_adornment)
            if demand_args:
                demand_head = Atom(
                    magic_name(atom.relation, sub_adornment), demand_args)
            else:
                demand_head = Atom(
                    magic_name(atom.relation, sub_adornment) + "_seed", ())
            transformed.add(Rule(
                demand_head, list(prefix_for_sip), (), 1.0,
                _fresh_label(label_counts, "mg")))
            pending.append((atom.relation, sub_adornment))
            adorned_atom = Atom(adorned_name(atom.relation, sub_adornment),
                                atom.args)
            new_body.append(adorned_atom)
            prefix_for_sip.append(adorned_atom)
        else:
            new_body.append(atom)
            prefix_for_sip.append(atom)
        bound.update(atom.variables())

    adorned_head = Atom(adorned_name(head.relation, adornment), head.args)
    label = _adorned_label(rule, adornment, label_counts)
    label_map[label] = rule.label or label
    transformed.add(Rule(adorned_head, new_body, rule.constraints,
                         rule.probability, label))


def _magic_guard(head: Atom, adornment: str) -> Atom:
    args = _bound_args(head, adornment)
    if args:
        return Atom(magic_name(head.relation, adornment), args)
    return Atom(magic_name(head.relation, adornment) + "_seed", ())


def _adorned_label(rule: Rule, adornment: str,
                   label_counts: Dict[str, int]) -> str:
    base = "%s%s%s" % (rule.label or "r", ADORN_SEP, adornment)
    count = label_counts.get(base, 0)
    label_counts[base] = count + 1
    return base if count == 0 else "%s_%d" % (base, count)


def _fresh_label(label_counts: Dict[str, int], prefix: str) -> str:
    count = label_counts.get(prefix, 0) + 1
    label_counts[prefix] = count
    return "%s%d" % (prefix, count)


def _strip_adornment(key: str) -> str:
    """``rel@ad(args)`` → ``rel(args)``; non-adorned keys pass through."""
    at = key.find(ADORN_SEP)
    if at == -1:
        return key
    paren = key.find("(")
    if paren != -1 and at > paren:
        return key  # '@' inside an argument constant, not an adornment
    if paren == -1:
        return key[:at]
    return key[:at] + key[paren:]


def original_provenance_graph(graph, magic: MagicProgram):
    """Translate an adorned provenance graph back to original terms.

    - magic (demand) tuples and the executions deriving them are dropped;
    - adorned tuple keys lose their adornment (``tp@bb(1,6)`` → ``tp(1,6)``);
    - bridge executions (which merely wrap an IDB base fact) collapse away;
    - adorned rule labels map back to the original labels, merging the
      executions of different adornments of the same rule firing.

    The result is a subgraph of the full-evaluation provenance graph (the
    part relevant to the query), so extraction — including hop limits —
    behaves identically on it.  Verified in ``tests/datalog/test_magic.py``.
    """
    from ..provenance.graph import ProvenanceGraph, RuleExecution

    cleaned = ProvenanceGraph()
    for key in graph.tuple_keys():
        if key.startswith(MAGIC_PREFIX):
            continue
        if graph.is_base(key):
            cleaned.add_base_tuple(key, graph.base_probability(key),
                                   graph.base_label(key))
    for label, probability in graph.rules().items():
        original = magic.label_map.get(label)
        if original is not None:
            cleaned.add_rule(original, probability)
    for execution in graph.executions():
        if execution.head.startswith(MAGIC_PREFIX):
            continue
        original_label = magic.label_map.get(execution.rule_label)
        if original_label is None:
            # Bridge execution: rel@ad(args) <- [m_..., rel(args)].
            # The wrapped base tuple takes the adorned tuple's place, so
            # the execution itself vanishes.
            continue
        head = _strip_adornment(execution.head)
        body = tuple(
            _strip_adornment(body_key) for body_key in execution.body
            if not body_key.startswith(MAGIC_PREFIX)
        )
        cleaned.add_execution(RuleExecution(
            original_label, head, body, execution.probability))
    return cleaned


# -- provenance normalisation ---------------------------------------------------

def normalize_polynomial(polynomial, magic: MagicProgram):
    """Strip magic literals and restore original rule labels.

    Magic demand literals are deterministic (probability 1) bookkeeping;
    adorned rule labels map back through ``magic.label_map``; bridge-rule
    literals vanish (they are deterministic plumbing).  The result is
    directly comparable to a polynomial extracted from full evaluation.
    """
    from ..provenance.polynomial import (
        Monomial, Polynomial, rule_literal)

    monomials = []
    for monomial in polynomial.monomials:
        literals = []
        for literal in monomial.literals:
            if literal.is_rule:
                if literal.key.startswith("mg") or \
                        literal.key.startswith("bridge"):
                    continue
                original = magic.label_map.get(literal.key)
                literals.append(rule_literal(original)
                                if original else literal)
            else:
                if literal.key.startswith(MAGIC_PREFIX):
                    continue
                literals.append(literal)
        monomials.append(Monomial(literals))
    return Polynomial(monomials)
